//! Figure 6.6 — kNN search: page accesses (a) and clock time (b) for the
//! full, NVD and signature indexes, k ∈ {1, 5, 10, 20, 50}, dataset 0.01.
//!
//! Expected shape (paper): full best (except k = 1) and k-independent; NVD
//! wins at k = 1 (direct NVP point location) then degrades sharply (×50
//! pages / ×170 time from k=1→50); signature degrades moderately (×8).

use dsi_baselines::{FullIndex, NvdIndex};
use dsi_bench::{paper_dataset, paper_network, print_table, query_nodes, timed, Scale};
use dsi_signature::query::knn::{knn, KnnType};
use dsi_signature::SignatureIndex;

const KS: [usize; 5] = [1, 5, 10, 20, 50];

fn main() {
    let scale = Scale::from_env();
    println!(
        "Figure 6.6 reproduction — nodes={} queries={} seed={}",
        scale.nodes, scale.queries, scale.seed
    );
    let net = paper_network(&scale);
    let queries = query_nodes(&net, scale.queries, scale.seed);
    let objects = paper_dataset(&net, "0.01", scale.seed);
    println!("dataset 0.01: D = {}", objects.len());

    let mut full = FullIndex::build(&net, &objects, dsi_bench::POOL_PAGES, true);
    let mut nvd = NvdIndex::build(&net, &objects, dsi_bench::POOL_PAGES);
    let sig = SignatureIndex::build(&net, &objects, &dsi_bench::paper_signature_config(&net));
    let mut sess = sig.session(&net);

    let header: Vec<String> = [
        "k",
        "full pages",
        "NVD pages",
        "sig pages",
        "full ms",
        "NVD ms",
        "sig ms",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for &k in &KS {
        // Page accesses are counted per query from a cold buffer — "unique
        // pages a query touches" — so numbers are comparable across engines
        // regardless of inter-query cache reuse.
        let mut f_full = 0u64;
        let (_, t_full) = timed(|| {
            for &q in &queries {
                full.cold_reset();
                let _ = full.knn(q, k);
                f_full += full.io_stats().faults;
            }
        });
        let p_full = f_full as f64 / queries.len() as f64;

        let mut f_nvd = 0u64;
        let (_, t_nvd) = timed(|| {
            for &q in &queries {
                nvd.cold_reset();
                let _ = nvd.knn(&net, q, k);
                f_nvd += nvd.io_stats().faults;
            }
        });
        let p_nvd = f_nvd as f64 / queries.len() as f64;

        let mut f_sig = 0u64;
        let (_, t_sig) = timed(|| {
            for &q in &queries {
                sess.cold_reset();
                let _ = knn(&mut sess, q, k, KnnType::Type3);
                f_sig += sess.io_stats().faults;
            }
        });
        let p_sig = f_sig as f64 / queries.len() as f64;

        rows.push(vec![
            k.to_string(),
            format!("{p_full:.1}"),
            format!("{p_nvd:.1}"),
            format!("{p_sig:.1}"),
            format!("{:.2}", 1000.0 * t_full / queries.len() as f64),
            format!("{:.2}", 1000.0 * t_nvd / queries.len() as f64),
            format!("{:.2}", 1000.0 * t_sig / queries.len() as f64),
        ]);
    }
    print_table(
        "Fig 6.6: kNN search on dataset 0.01 (avg per query)",
        &header,
        &rows,
    );
    println!("\npaper's shape: full k-independent; NVD best at k=1 then sharp growth; sig grows ~8x to k=50");
}
