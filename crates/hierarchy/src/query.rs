//! Bidirectional upward point-to-point queries.
//!
//! Both search frontiers only climb upward arcs; on an undirected network
//! the forward and backward upward graphs coincide, so the two sides run
//! the same relaxation. Correctness is the CH meeting-node property: for
//! any shortest `s–t` path there is a highest-ranked node `p` on it such
//! that the `s→p` prefix and the `t→p` suffix are both upward paths in
//! the hierarchy, so `d(s,t) = min_p (d_up(s,p) + d_up(t,p))`.
//!
//! A direction stops once the key it pops is no better than the best
//! meeting seen (popped keys are monotone, so nothing beyond can help);
//! the query ends when both directions have stopped. Meetings are scored
//! against the other side's *tentative* labels too — a tentative label is
//! the length of a real upward path, hence a valid upper bound, and
//! scoring it early tightens the stopping bound.

use dsi_graph::{Dist, NodeId, SsspWorkspace, INFINITY};

use crate::build::ContractionHierarchy;

/// Reusable state for one query worker: the two directional searches.
/// Like [`SsspWorkspace`], starting a query is O(1) — no per-query
/// allocation.
#[derive(Clone, Debug, Default)]
pub struct ChWorkspace {
    pub(crate) fwd: SsspWorkspace,
    pub(crate) bwd: SsspWorkspace,
}

impl ChWorkspace {
    pub fn new() -> ChWorkspace {
        ChWorkspace::default()
    }
}

impl ContractionHierarchy {
    /// Exact network distance from `s` to `t` ([`INFINITY`] if
    /// disconnected), by bidirectional upward Dijkstra.
    pub fn p2p(&self, s: NodeId, t: NodeId, ws: &mut ChWorkspace) -> Dist {
        if s == t {
            return 0;
        }
        ws.fwd.begin_external(self.n, self.up_step_bound);
        ws.bwd.begin_external(self.n, self.up_step_bound);
        ws.fwd.improve(s, 0);
        ws.bwd.improve(t, 0);

        let mut best = INFINITY;
        let mut fwd_done = false;
        let mut bwd_done = false;
        let mut take_fwd = true;
        while !(fwd_done && bwd_done) {
            let forward = if fwd_done {
                false
            } else if bwd_done {
                true
            } else {
                take_fwd
            };
            take_fwd = !take_fwd;
            let (side, other, done) = if forward {
                (&mut ws.fwd, &ws.bwd, &mut fwd_done)
            } else {
                (&mut ws.bwd, &ws.fwd, &mut bwd_done)
            };
            let Some((v, d)) = side.pop_settled() else {
                *done = true;
                continue;
            };
            if d >= best {
                *done = true;
                continue;
            }
            let o = other.dist(v);
            if o != INFINITY {
                best = best.min(d.saturating_add(o));
            }
            for a in self.up_arcs_of(v) {
                side.improve(a.to, d + a.weight);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_graph::generate::{grid, random_planar, PlanarConfig};
    use dsi_graph::{sssp, ObjectSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::build::ChConfig;

    #[test]
    fn p2p_matches_dijkstra_exhaustively_on_a_grid() {
        let g = grid(7, 7);
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        let mut ws = ChWorkspace::new();
        for s in g.nodes() {
            let tree = sssp(&g, s);
            for t in g.nodes() {
                assert_eq!(ch.p2p(s, t, &mut ws), tree.dist[t.index()], "p2p({s}, {t})");
            }
        }
    }

    #[test]
    fn p2p_matches_dijkstra_on_a_random_planar_network() {
        let mut rng = StdRng::seed_from_u64(42);
        let net = random_planar(
            &PlanarConfig {
                num_nodes: 400,
                ..Default::default()
            },
            &mut rng,
        );
        let ch = ContractionHierarchy::build(&net, &ChConfig::default());
        let mut ws = ChWorkspace::new();
        for s in net.nodes().step_by(37) {
            let tree = sssp(&net, s);
            for t in net.nodes().step_by(11) {
                assert_eq!(ch.p2p(s, t, &mut ws), tree.dist[t.index()]);
            }
        }
    }

    #[test]
    fn disconnected_pairs_report_infinity() {
        // Two 2x2 grids glued into one node set without inter-edges.
        let mut b = dsi_graph::NetworkBuilder::new();
        let p = dsi_graph::Point::new(0.0, 0.0);
        let ids: Vec<NodeId> = (0..6).map(|_| b.add_node(p)).collect();
        b.add_edge(ids[0], ids[1], 3);
        b.add_edge(ids[1], ids[2], 4);
        b.add_edge(ids[3], ids[4], 1);
        b.add_edge(ids[4], ids[5], 2);
        let net = b.build();
        let ch = ContractionHierarchy::build(&net, &ChConfig::default());
        let mut ws = ChWorkspace::new();
        assert_eq!(ch.p2p(ids[0], ids[2], &mut ws), 7);
        assert_eq!(ch.p2p(ids[0], ids[4], &mut ws), INFINITY);
        assert_eq!(ch.p2p(ids[5], ids[1], &mut ws), INFINITY);
    }

    #[test]
    fn search_space_is_a_small_fraction_of_the_network() {
        // The point of the hierarchy: upward searches settle far fewer
        // nodes than flat Dijkstra's n.
        let mut rng = StdRng::seed_from_u64(7);
        let net = random_planar(
            &PlanarConfig {
                num_nodes: 2000,
                ..Default::default()
            },
            &mut rng,
        );
        let objects = ObjectSet::uniform(&net, 0.01, &mut rng);
        let ch = ContractionHierarchy::build(&net, &ChConfig::default());
        let mut ws = ChWorkspace::new();
        let mut max_settled = 0usize;
        for (_, host) in objects.iter() {
            ch.p2p(NodeId(0), host, &mut ws);
            max_settled = max_settled.max(ws.fwd.settled_count() + ws.bwd.settled_count());
        }
        assert!(
            max_settled * 4 < net.num_nodes(),
            "upward search settled {max_settled} of {} nodes",
            net.num_nodes()
        );
    }
}
