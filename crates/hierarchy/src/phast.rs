//! PHAST: full single-source shortest paths over the hierarchy.
//!
//! One-to-all on a CH (Delling et al., "PHAST: Hardware-accelerated
//! shortest path trees"): run a plain upward Dijkstra from the source —
//! a few hundred settles — then sweep every node once in *descending*
//! rank order, relaxing its downward arcs. When the sweep reaches a node
//! its distance is already final (every higher-ranked in-neighbor was
//! processed earlier), so the sweep needs no priority queue: it is a
//! linear, cache-friendly pass over two flat arrays.
//!
//! This is the construction accelerator for index builds: one PHAST run
//! per object replaces one full Dijkstra per object, with the sweep cost
//! O(n + m_ch) independent of queue discipline.

use dsi_graph::{Dist, NodeId, SsspWorkspace, INFINITY};

use crate::build::ContractionHierarchy;

/// Reusable state for PHAST runs: the upward search plus the dense output
/// distances. The distance array is re-filled (a memset) per run — unlike
/// the epoch-stamped workspace the sweep reads every slot, so stamping
/// would cost more than it saves.
#[derive(Clone, Debug, Default)]
pub struct PhastWorkspace {
    up: SsspWorkspace,
    dist: Vec<Dist>,
}

impl PhastWorkspace {
    pub fn new() -> PhastWorkspace {
        PhastWorkspace::default()
    }

    /// Distance of `v` from the last run's source ([`INFINITY`] if
    /// unreachable).
    #[inline]
    pub fn dist(&self, v: NodeId) -> Dist {
        self.dist[v.index()]
    }

    /// All distances from the last run's source, indexed by node.
    #[inline]
    pub fn dists(&self) -> &[Dist] {
        &self.dist
    }
}

impl ContractionHierarchy {
    /// Exact distances from `source` to every node, into `ws`.
    pub fn sssp_phast(&self, source: NodeId, ws: &mut PhastWorkspace) {
        ws.dist.clear();
        ws.dist.resize(self.n, INFINITY);

        ws.up.begin_external(self.n, self.up_step_bound);
        ws.up.improve(source, 0);
        while let Some((v, d)) = ws.up.pop_settled() {
            ws.dist[v.index()] = d;
            for a in self.up_arcs_of(v) {
                ws.up.improve(a.to, d + a.weight);
            }
        }

        // Linear sweep, descending rank: `sweep_arcs` is laid out in
        // exactly this order, so the arc reads are sequential.
        for (i, &v) in self.order.iter().rev().enumerate() {
            let dv = ws.dist[v.index()];
            if dv == INFINITY {
                continue;
            }
            let arcs =
                &self.sweep_arcs[self.sweep_index[i] as usize..self.sweep_index[i + 1] as usize];
            for &(to, w) in arcs {
                let slot = &mut ws.dist[to.index()];
                let nd = dv + w;
                if nd < *slot {
                    *slot = nd;
                }
            }
        }
    }

    /// Exact distance table `sources × targets`: one PHAST sweep per
    /// source, reading only the target slots out of each dense result.
    /// This is the boundary-overlay primitive for partitioned indexes
    /// (`dsi-partition`): with sources = a region's boundary nodes it
    /// yields the remote-hop glue rows a shard router needs.
    pub fn many_to_many(
        &self,
        sources: &[NodeId],
        targets: &[NodeId],
        ws: &mut PhastWorkspace,
    ) -> Vec<Vec<Dist>> {
        sources
            .iter()
            .map(|&s| {
                self.sssp_phast(s, ws);
                targets.iter().map(|&t| ws.dist(t)).collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ChConfig;
    use dsi_graph::generate::{grid, random_planar, PlanarConfig};
    use dsi_graph::sssp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn phast_equals_dijkstra_from_every_grid_source() {
        let g = grid(8, 8);
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        let mut ws = PhastWorkspace::new();
        for s in g.nodes() {
            ch.sssp_phast(s, &mut ws);
            assert_eq!(ws.dists(), &sssp(&g, s).dist[..], "source {s}");
        }
    }

    #[test]
    fn phast_equals_dijkstra_on_random_planar_sources() {
        let mut rng = StdRng::seed_from_u64(11);
        let net = random_planar(
            &PlanarConfig {
                num_nodes: 600,
                ..Default::default()
            },
            &mut rng,
        );
        let ch = ContractionHierarchy::build(&net, &ChConfig::default());
        let mut ws = PhastWorkspace::new();
        for s in net.nodes().step_by(53) {
            ch.sssp_phast(s, &mut ws);
            assert_eq!(ws.dists(), &sssp(&net, s).dist[..]);
        }
    }

    #[test]
    fn unreachable_components_stay_infinite() {
        let mut b = dsi_graph::NetworkBuilder::new();
        let p = dsi_graph::Point::new(0.0, 0.0);
        let ids: Vec<NodeId> = (0..5).map(|_| b.add_node(p)).collect();
        b.add_edge(ids[0], ids[1], 2);
        b.add_edge(ids[2], ids[3], 1);
        b.add_edge(ids[3], ids[4], 6);
        let net = b.build();
        let ch = ContractionHierarchy::build(&net, &ChConfig::default());
        let mut ws = PhastWorkspace::new();
        ch.sssp_phast(ids[0], &mut ws);
        assert_eq!(ws.dist(ids[1]), 2);
        assert_eq!(ws.dist(ids[2]), INFINITY);
        assert_eq!(ws.dist(ids[4]), INFINITY);
    }
}
