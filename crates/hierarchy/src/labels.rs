//! Canonical hub labels extracted from the contraction hierarchy.
//!
//! A hub label for node `v` is a sorted array of `(hub, distance)` pairs
//! such that for any pair `(s, t)` some shortest `s–t` path has its
//! highest-ranked node in **both** labels: `d(s, t)` is the minimum of
//! `d_s(h) + d_t(h)` over the hubs the two labels share — one linear merge
//! of two sorted arrays, no graph traversal at all. On an undirected
//! network the forward and backward upward graphs coincide, so one label
//! per node serves both query directions.
//!
//! Extraction reuses the hierarchy: the upward search space of `v`
//! (settled by the exact same relaxation loop as one side of
//! [`ContractionHierarchy::p2p`], run to exhaustion) is a superset of the
//! canonical label, with upward distances as upper bounds. Candidates are
//! then pruned with the standard check: processing nodes in descending
//! rank and each node's candidates in descending hub rank, candidate
//! `(h, d)` is dropped when the already-kept entries of `v` merged with
//! the finished label of `h` realise a distance `≤ d` — either `d`
//! overshoots the true distance (the upward path through `h` is not
//! shortest) or a higher-ranked hub already covers the pair. What
//! survives is the canonical label: every entry is exact and no entry is
//! dominated by another hub.
//!
//! Because a node's pruning only consults labels of strictly
//! higher-ranked nodes, whole *height levels* of the hierarchy (nodes
//! whose upward search spaces cannot contain one another) are independent
//! and are built in parallel under `std::thread::scope`, like the
//! partition builds — one `SsspWorkspace` per worker, results collected
//! over a channel.
//!
//! Storage is a flat CSR: `index[v]..index[v+1]` brackets `v`'s entries in
//! `hubs`/`dists`, hubs sorted ascending by node id so lookups are sorted
//! merges. [`LabelBuckets`] inverts a target set's labels (hub →
//! `(target, dist)` rows) for one-to-many scans: one pass over the source
//! label touches every target sharing a hub with it.

use std::cmp::Reverse;
use std::sync::atomic::{AtomicUsize, Ordering};

use dsi_graph::ids::dist_add;
use dsi_graph::{Dist, NodeId, SsspWorkspace, INFINITY};

use crate::build::ContractionHierarchy;

/// Hub labels for every node, in flat CSR form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HubLabels {
    pub(crate) n: usize,
    /// Ordering seed of the hierarchy the labels were extracted from.
    pub(crate) seed: u64,
    /// CSR over nodes: `hubs[index[v]..index[v+1]]` are `v`'s hubs,
    /// ascending by node id; `dists` is parallel to `hubs`.
    pub(crate) index: Vec<u32>,
    pub(crate) hubs: Vec<NodeId>,
    pub(crate) dists: Vec<Dist>,
}

impl HubLabels {
    /// Extract canonical labels from `ch`, parallelising across hierarchy
    /// height levels. Deterministic: the same hierarchy always yields the
    /// same labels, regardless of worker count.
    pub fn build(ch: &ContractionHierarchy) -> HubLabels {
        let n = ch.num_nodes();

        // Height of a node = longest upward-arc path above it. Everything
        // a node's upward search can settle (hence everything its pruning
        // consults) has strictly smaller height, so equal-height nodes are
        // independent. Walk descending rank: all up-arc heads are already
        // assigned.
        let mut height = vec![0u32; n];
        let mut max_height = 0u32;
        for &v in ch.order().iter().rev() {
            let h = ch
                .up_arcs_of(v)
                .iter()
                .map(|a| height[a.to.index()] + 1)
                .max()
                .unwrap_or(0);
            height[v.index()] = h;
            max_height = max_height.max(h);
        }
        let mut levels: Vec<Vec<NodeId>> = vec![Vec::new(); max_height as usize + 1];
        for v in 0..n {
            levels[height[v] as usize].push(NodeId(v as u32));
        }

        let num_workers = std::thread::available_parallelism()
            .map_or(1, |p| p.get())
            .min(8);
        let mut labels: Vec<Vec<(NodeId, Dist)>> = vec![Vec::new(); n];
        let mut ws = SsspWorkspace::new();
        for level in &levels {
            // Small levels (the hierarchy top is a handful of nodes) are
            // cheaper serially than a scope spawn.
            if num_workers <= 1 || level.len() < 32 {
                for &v in level {
                    let lab = extract_label(ch, v, &labels, &mut ws);
                    labels[v.index()] = lab;
                }
                continue;
            }
            let next = AtomicUsize::new(0);
            let mut built: Vec<(NodeId, Vec<(NodeId, Dist)>)> = std::thread::scope(|s| {
                let (tx, rx) = std::sync::mpsc::channel();
                for _ in 0..num_workers {
                    let tx = tx.clone();
                    let (next, labels, level) = (&next, &labels, &level[..]);
                    s.spawn(move || {
                        let mut ws = SsspWorkspace::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&v) = level.get(i) else { break };
                            let lab = extract_label(ch, v, labels, &mut ws);
                            tx.send((v, lab)).expect("collector alive");
                        }
                    });
                }
                drop(tx);
                rx.into_iter().collect()
            });
            for (v, lab) in built.drain(..) {
                labels[v.index()] = lab;
            }
        }

        let mut index = Vec::with_capacity(n + 1);
        index.push(0u32);
        let mut hubs = Vec::new();
        let mut dists = Vec::new();
        for lab in &labels {
            for &(h, d) in lab {
                hubs.push(h);
                dists.push(d);
            }
            index.push(hubs.len() as u32);
        }
        HubLabels {
            n,
            seed: ch.seed(),
            index,
            hubs,
            dists,
        }
    }

    /// Build labels by pruned-landmark labelling directly over an
    /// adjacency list — no hierarchy required. `order` ranks nodes
    /// hub-first; for each root in order, a pruned Dijkstra adds the root
    /// as a hub to every node whose pair with the root is not already
    /// covered by earlier (higher-ranked) hubs, and stops expanding at
    /// covered nodes. Labels are exact and minimal for the given order.
    ///
    /// This is the builder for the partition router's boundary-overlay
    /// glue: the overlay's per-region *cliques* (metric closures) give
    /// nodes degrees in the hundreds, where contraction drowns in
    /// witness searches and fill-in — pruned Dijkstras never contract,
    /// so density only costs edge scans. Deterministic for a given
    /// adjacency and order.
    pub fn build_pruned(adj: &[Vec<(NodeId, Dist)>], order: &[NodeId]) -> HubLabels {
        let n = adj.len();
        debug_assert_eq!(order.len(), n);
        let mut labels: Vec<Vec<(NodeId, Dist)>> = vec![Vec::new(); n];
        // Dense view of the current root's label for O(|L(u)|) coverage
        // checks while settling u.
        let mut root_dist = vec![INFINITY; n];
        let mut dist = vec![INFINITY; n];
        let mut touched: Vec<NodeId> = Vec::new();
        let mut heap = std::collections::BinaryHeap::new();
        for &root in order {
            for &(h, d) in &labels[root.index()] {
                root_dist[h.index()] = d;
            }
            dist[root.index()] = 0;
            touched.push(root);
            heap.push(Reverse((0u32, root)));
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > dist[u.index()] {
                    continue;
                }
                // Covered by a shared higher-ranked hub? Then every
                // shortest path through u is too: prune the whole branch.
                let covered = labels[u.index()]
                    .iter()
                    .any(|&(h, hd)| dist_add(root_dist[h.index()], hd) <= d);
                if covered {
                    continue;
                }
                labels[u.index()].push((root, d));
                for &(v, w) in &adj[u.index()] {
                    let nd = dist_add(d, w);
                    if nd < dist[v.index()] {
                        if dist[v.index()] == INFINITY {
                            touched.push(v);
                        }
                        dist[v.index()] = nd;
                        heap.push(Reverse((nd, v)));
                    }
                }
            }
            for &(h, _) in &labels[root.index()] {
                root_dist[h.index()] = INFINITY;
            }
            for t in touched.drain(..) {
                dist[t.index()] = INFINITY;
            }
            heap.clear();
        }

        let mut index = Vec::with_capacity(n + 1);
        index.push(0u32);
        let mut hubs = Vec::new();
        let mut dists = Vec::new();
        for lab in &mut labels {
            lab.sort_unstable_by_key(|&(h, _)| h);
            for &(h, d) in lab.iter() {
                hubs.push(h);
                dists.push(d);
            }
            index.push(hubs.len() as u32);
        }
        HubLabels {
            n,
            seed: 0,
            index,
            hubs,
            dists,
        }
    }

    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Total `(hub, dist)` entries across all labels.
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.hubs.len()
    }

    /// Mean entries per label.
    pub fn avg_label_len(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.hubs.len() as f64 / self.n as f64
    }

    /// In-memory footprint of the CSR arrays, bytes.
    pub fn label_bytes(&self) -> usize {
        self.index.len() * std::mem::size_of::<u32>()
            + self.hubs.len() * std::mem::size_of::<NodeId>()
            + self.dists.len() * std::mem::size_of::<Dist>()
    }

    /// Ordering seed of the hierarchy these labels came from.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `v`'s label as parallel `(hubs, dists)` slices, hubs ascending.
    #[inline]
    pub fn label_of(&self, v: NodeId) -> (&[NodeId], &[Dist]) {
        let (a, b) = (
            self.index[v.index()] as usize,
            self.index[v.index() + 1] as usize,
        );
        (&self.hubs[a..b], &self.dists[a..b])
    }

    /// Exact network distance from `s` to `t` ([`INFINITY`] if no common
    /// hub, i.e. disconnected) by one sorted merge of the two labels.
    #[inline]
    pub fn p2p(&self, s: NodeId, t: NodeId) -> Dist {
        self.p2p_counted(s, t).0
    }

    /// [`p2p`](Self::p2p) plus the number of label entries the merge
    /// advanced over — the unit `OpStats::label_entries_scanned` counts.
    pub fn p2p_counted(&self, s: NodeId, t: NodeId) -> (Dist, u64) {
        let (sh, sd) = self.label_of(s);
        let (th, td) = self.label_of(t);
        let mut best = INFINITY;
        let (mut i, mut j) = (0usize, 0usize);
        while i < sh.len() && j < th.len() {
            match sh[i].cmp(&th[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    best = best.min(dist_add(sd[i], td[j]));
                    i += 1;
                    j += 1;
                }
            }
        }
        (best, (i + j) as u64)
    }

    /// Invert `targets`' labels into hub-grouped buckets for repeated
    /// one-to-many scans against varying sources.
    pub fn buckets(&self, targets: &[NodeId]) -> LabelBuckets {
        let mut counts = vec![0u32; self.n + 1];
        for &t in targets {
            for h in self.label_of(t).0 {
                counts[h.index() + 1] += 1;
            }
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let index = counts;
        let mut fill = index.clone();
        let mut entries = vec![(0u32, 0 as Dist); *index.last().unwrap_or(&0) as usize];
        for (rank, &t) in targets.iter().enumerate() {
            let (hs, ds) = self.label_of(t);
            for (h, &d) in hs.iter().zip(ds) {
                let at = fill[h.index()] as usize;
                entries[at] = (rank as u32, d);
                fill[h.index()] += 1;
            }
        }
        LabelBuckets {
            num_targets: targets.len(),
            index,
            entries,
        }
    }

    /// One-to-many distances: `out[rank]` = exact distance from `s` to the
    /// target with that rank in the bucket set ([`INFINITY`] when
    /// unreachable). One pass over `s`'s label; returns the entries
    /// scanned (source label + touched bucket rows).
    pub fn one_to_many(&self, s: NodeId, buckets: &LabelBuckets, out: &mut Vec<Dist>) -> u64 {
        out.clear();
        out.resize(buckets.num_targets, INFINITY);
        let (hs, ds) = self.label_of(s);
        let mut scanned = hs.len() as u64;
        for (h, &dv) in hs.iter().zip(ds) {
            let (a, b) = (
                buckets.index[h.index()] as usize,
                buckets.index[h.index() + 1] as usize,
            );
            scanned += (b - a) as u64;
            for &(rank, dt) in &buckets.entries[a..b] {
                let d = dist_add(dv, dt);
                let slot = &mut out[rank as usize];
                if d < *slot {
                    *slot = d;
                }
            }
        }
        scanned
    }
}

/// A target set's labels regrouped by hub: row `h` lists `(target rank,
/// d(target, h))` for every target whose label contains `h`. Built once
/// per target set ([`HubLabels::buckets`]), scanned once per source
/// ([`HubLabels::one_to_many`]).
#[derive(Clone, Debug)]
pub struct LabelBuckets {
    num_targets: usize,
    /// CSR over hubs: `entries[index[h]..index[h+1]]` is hub `h`'s row.
    index: Vec<u32>,
    entries: Vec<(u32, Dist)>,
}

impl LabelBuckets {
    /// Number of targets the buckets were built over.
    #[inline]
    pub fn num_targets(&self) -> usize {
        self.num_targets
    }

    /// Total label entries folded into the buckets (the build cost, and
    /// the accounting charge for constructing them).
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }
}

/// Settle `v`'s full upward search space and prune it to the canonical
/// label. `labels` must hold finished labels for every strictly
/// higher-ranked node (guaranteed by level order); the result is sorted
/// ascending by hub id.
fn extract_label(
    ch: &ContractionHierarchy,
    v: NodeId,
    labels: &[Vec<(NodeId, Dist)>],
    ws: &mut SsspWorkspace,
) -> Vec<(NodeId, Dist)> {
    ws.begin_external(ch.num_nodes(), ch.up_step_bound());
    ws.improve(v, 0);
    let mut cand: Vec<(NodeId, Dist)> = Vec::new();
    while let Some((x, d)) = ws.pop_settled() {
        cand.push((x, d));
        for a in ch.up_arcs_of(x) {
            ws.improve(a.to, d + a.weight);
        }
    }
    // Descending hub rank: when candidate `h` is tested, every hub that
    // could cover it is already in `kept`.
    cand.sort_unstable_by_key(|&(h, _)| Reverse(ch.rank_of(h)));

    let mut kept: Vec<(NodeId, Dist)> = Vec::with_capacity(cand.len());
    for &(h, d) in &cand {
        if h != v && merge_min(&kept, &labels[h.index()]) <= d {
            continue;
        }
        let at = kept.partition_point(|&(x, _)| x < h);
        kept.insert(at, (h, d));
    }
    kept
}

/// Min of `a(x) + b(x)` over hubs `x` the two sorted labels share.
fn merge_min(a: &[(NodeId, Dist)], b: &[(NodeId, Dist)]) -> Dist {
    let mut best = INFINITY;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                best = best.min(dist_add(a[i].1, b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ChConfig;
    use crate::ChWorkspace;
    use dsi_graph::generate::{grid, random_planar, PlanarConfig};
    use dsi_graph::sssp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn label_merge_matches_dijkstra_exhaustively_on_a_grid() {
        let g = grid(7, 7);
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        let hl = HubLabels::build(&ch);
        for s in g.nodes() {
            let tree = sssp(&g, s);
            for t in g.nodes() {
                assert_eq!(hl.p2p(s, t), tree.dist[t.index()], "p2p({s}, {t})");
            }
        }
    }

    #[test]
    fn label_merge_matches_ch_on_a_random_planar_network() {
        let mut rng = StdRng::seed_from_u64(42);
        let net = random_planar(
            &PlanarConfig {
                num_nodes: 400,
                ..Default::default()
            },
            &mut rng,
        );
        let ch = ContractionHierarchy::build(&net, &ChConfig::default());
        let hl = HubLabels::build(&ch);
        let mut ws = ChWorkspace::new();
        for s in net.nodes().step_by(17) {
            for t in net.nodes().step_by(13) {
                assert_eq!(hl.p2p(s, t), ch.p2p(s, t, &mut ws));
            }
        }
    }

    #[test]
    fn pruned_landmark_build_matches_dijkstra_including_dense_cliques() {
        // The glue builder's regime: adjacency lists with clique blocks
        // (metric closures) whose degrees would overflow the road
        // network's slot width, plus a sparse bridge. Labels from
        // pruned Dijkstras must equal ground-truth Dijkstra distances
        // on every pair — including cross-clique and disconnected ones.
        let mut rng = StdRng::seed_from_u64(9);
        let net = random_planar(
            &PlanarConfig {
                num_nodes: 120,
                ..Default::default()
            },
            &mut rng,
        );
        let n = net.num_nodes();
        // Metric closure of the planar net on nodes 0..60 (one clique),
        // original sparse edges on the rest, one bridge.
        let mut adj: Vec<Vec<(NodeId, Dist)>> = vec![Vec::new(); n];
        let trees: Vec<_> = (0..60).map(|s| sssp(&net, NodeId(s as u32))).collect();
        for u in 0..60 {
            for v in 0..60 {
                let d = trees[u].dist[v];
                if u != v && d != INFINITY {
                    adj[u].push((NodeId(v as u32), d));
                }
            }
        }
        for (u, slot) in adj.iter_mut().enumerate().skip(60) {
            for (_, t, w) in net.neighbors(NodeId(u as u32)) {
                if t.index() >= 60 {
                    slot.push((t, w));
                }
            }
        }
        adj[10].push((NodeId(80), 5));
        adj[80].push((NodeId(10), 5));

        let mut order: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        order.sort_unstable_by_key(|&v| (Reverse(adj[v.index()].len()), v.0));
        let hl = HubLabels::build_pruned(&adj, &order);

        // Ground truth on the same adjacency.
        let dij = |s: usize| {
            let mut dist = vec![INFINITY; n];
            let mut heap = std::collections::BinaryHeap::new();
            dist[s] = 0;
            heap.push(Reverse((0u32, s)));
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > dist[u] {
                    continue;
                }
                for &(v, w) in &adj[u] {
                    let nd = dist_add(d, w);
                    if nd < dist[v.index()] {
                        dist[v.index()] = nd;
                        heap.push(Reverse((nd, v.index())));
                    }
                }
            }
            dist
        };
        for s in (0..n).step_by(7) {
            let want = dij(s);
            for (t, &want_d) in want.iter().enumerate() {
                assert_eq!(
                    hl.p2p(NodeId(s as u32), NodeId(t as u32)),
                    want_d,
                    "pruned labels p2p({s}, {t})"
                );
            }
        }
    }

    #[test]
    fn disconnected_pairs_share_no_hub() {
        let mut b = dsi_graph::NetworkBuilder::new();
        let p = dsi_graph::Point::new(0.0, 0.0);
        let ids: Vec<NodeId> = (0..6).map(|_| b.add_node(p)).collect();
        b.add_edge(ids[0], ids[1], 3);
        b.add_edge(ids[1], ids[2], 4);
        b.add_edge(ids[3], ids[4], 1);
        b.add_edge(ids[4], ids[5], 2);
        let net = b.build();
        let ch = ContractionHierarchy::build(&net, &ChConfig::default());
        let hl = HubLabels::build(&ch);
        assert_eq!(hl.p2p(ids[0], ids[2]), 7);
        assert_eq!(hl.p2p(ids[0], ids[4]), INFINITY);
        assert_eq!(hl.p2p(ids[5], ids[1]), INFINITY);
    }

    #[test]
    fn labels_are_canonical() {
        // No entry is prunable by another hub: for every `(h, d)` in
        // `L(v)`, the best two-hop route through any *other* shared hub of
        // `L(v)` and `L(h)` is strictly longer than `d`.
        let g = grid(8, 8);
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        let hl = HubLabels::build(&ch);
        for v in g.nodes() {
            let (hs, ds) = hl.label_of(v);
            for (&h, &d) in hs.iter().zip(ds) {
                if h == v {
                    assert_eq!(d, 0, "self entry of {v}");
                    continue;
                }
                let (hh, hd) = hl.label_of(h);
                let mut alt = INFINITY;
                for (&x, &dx) in hs.iter().zip(ds) {
                    if x == h {
                        continue;
                    }
                    if let Ok(i) = hh.binary_search(&x) {
                        alt = alt.min(dist_add(dx, hd[i]));
                    }
                }
                assert!(alt > d, "entry ({h}, {d}) of {v} prunable via {alt}");
            }
        }
    }

    #[test]
    fn hubs_are_sorted_and_labels_small() {
        let mut rng = StdRng::seed_from_u64(7);
        let net = random_planar(
            &PlanarConfig {
                num_nodes: 2000,
                ..Default::default()
            },
            &mut rng,
        );
        let ch = ContractionHierarchy::build(&net, &ChConfig::default());
        let hl = HubLabels::build(&ch);
        for v in net.nodes() {
            let (hs, _) = hl.label_of(v);
            assert!(hs.windows(2).all(|w| w[0] < w[1]), "hubs of {v} unsorted");
            assert!(hs.binary_search(&v).is_ok(), "{v} missing its self entry");
        }
        // The point of labels: entries per node stay tiny relative to n.
        assert!(
            hl.avg_label_len() * 16.0 < net.num_nodes() as f64,
            "avg label {} entries on {} nodes",
            hl.avg_label_len(),
            net.num_nodes()
        );
    }

    #[test]
    fn one_to_many_matches_pairwise_merges() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = random_planar(
            &PlanarConfig {
                num_nodes: 300,
                ..Default::default()
            },
            &mut rng,
        );
        let ch = ContractionHierarchy::build(&net, &ChConfig::default());
        let hl = HubLabels::build(&ch);
        let targets: Vec<NodeId> = net.nodes().step_by(7).collect();
        let buckets = hl.buckets(&targets);
        assert_eq!(buckets.num_targets(), targets.len());
        let mut out = Vec::new();
        for s in net.nodes().step_by(11) {
            let scanned = hl.one_to_many(s, &buckets, &mut out);
            assert!(scanned > 0);
            for (rank, &t) in targets.iter().enumerate() {
                assert_eq!(out[rank], hl.p2p(s, t), "one-to-many({s}, {t})");
            }
        }
    }

    #[test]
    fn build_is_deterministic() {
        let g = grid(9, 9);
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        assert_eq!(HubLabels::build(&ch), HubLabels::build(&ch));
    }

    #[test]
    fn empty_hierarchy_builds_empty_labels() {
        let net = dsi_graph::NetworkBuilder::new().build();
        let ch = ContractionHierarchy::build(&net, &ChConfig::default());
        let hl = HubLabels::build(&ch);
        assert_eq!(hl.num_nodes(), 0);
        assert_eq!(hl.num_entries(), 0);
    }
}
