//! Binary persistence for the contraction hierarchy.
//!
//! Same container discipline as the signature index's format v3
//! (`dsi-signature::persist`): a plaintext `[MAGIC][version]` preamble,
//! then the payload chopped into CRC-32-checksummed frames
//! ([`dsi_storage::FrameWriter`]). Truncation surfaces as an I/O error,
//! any bit flip as a checksum mismatch, and structural damage that
//! happens to keep its checksum (or a snapshot for the wrong network) is
//! caught by validation — ranks must form a permutation and every stored
//! arc must point strictly upward. A damaged snapshot is *detected*,
//! never served as a plausible-but-wrong oracle.
//!
//! Only ranks and upward arcs are stored; the rank order and the downward
//! CSR are re-derived at load, so a loaded hierarchy is structurally
//! identical to the one saved.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use dsi_graph::io::{get_u32, get_u64, put_u32, put_u64, LoadError};
use dsi_graph::{NodeId, NO_NODE};
use dsi_storage::{FrameReader, FrameWriter};

use crate::build::{ContractionHierarchy, UpArc};
use crate::labels::HubLabels;

const MAGIC: &[u8; 4] = b"DSCH";
const VERSION: u32 = 1;

/// Ceiling on any single up-front reservation while decoding (see the
/// signature persistence module for rationale: a corrupt length field must
/// not become a giant allocation).
const MAX_RESERVE: usize = 1 << 16;

/// Write a hierarchy snapshot.
pub fn write_hierarchy<W: Write>(ch: &ContractionHierarchy, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    put_u32(&mut w, VERSION)?;

    let mut w = FrameWriter::new(w);
    put_u64(&mut w, ch.seed)?;
    put_u32(&mut w, ch.n as u32)?;
    put_u32(&mut w, ch.num_shortcuts)?;
    for &r in &ch.rank {
        put_u32(&mut w, r)?;
    }
    for &i in &ch.up_index {
        put_u32(&mut w, i)?;
    }
    for a in &ch.up_arcs {
        put_u32(&mut w, a.to.0)?;
        put_u32(&mut w, a.weight)?;
        put_u32(&mut w, a.middle.0)?;
    }
    w.finish()?.flush()
}

/// Read a hierarchy snapshot. Every failure mode of a damaged file comes
/// back as a [`LoadError`]; this never panics on malformed input.
pub fn read_hierarchy<R: Read>(r: R) -> Result<ContractionHierarchy, LoadError> {
    let mut r = BufReader::new(r);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(LoadError::Format("not a hierarchy snapshot".into()));
    }
    let v = get_u32(&mut r)?;
    if v != VERSION {
        return Err(LoadError::Format(format!(
            "snapshot version {v}, expected {VERSION}"
        )));
    }

    let mut r = FrameReader::new(r);
    let seed = get_u64(&mut r)?;
    let n = get_u32(&mut r)? as usize;
    let num_shortcuts = get_u32(&mut r)?;

    let mut rank = Vec::with_capacity(n.min(MAX_RESERVE));
    let mut order = vec![NO_NODE; n];
    for v in 0..n {
        let rv = get_u32(&mut r)? as usize;
        if rv >= n || order[rv] != NO_NODE {
            return Err(LoadError::Format(format!(
                "ranks are not a permutation of 0..{n}"
            )));
        }
        order[rv] = NodeId(v as u32);
        rank.push(rv as u32);
    }

    let mut up_index = Vec::with_capacity((n + 1).min(MAX_RESERVE));
    for i in 0..=n {
        let off = get_u32(&mut r)?;
        if i == 0 && off != 0 {
            return Err(LoadError::Format("arc index does not start at 0".into()));
        }
        if let Some(&prev) = up_index.last() {
            if off < prev {
                return Err(LoadError::Format("arc index not monotone".into()));
            }
        }
        up_index.push(off);
    }
    let num_arcs = *up_index.last().expect("non-empty index") as usize;

    let mut up_lists: Vec<Vec<UpArc>> = vec![Vec::new(); n];
    for v in 0..n {
        let from = NodeId(v as u32);
        for _ in up_index[v]..up_index[v + 1] {
            let to = get_u32(&mut r)?;
            let weight = get_u32(&mut r)?;
            let middle = get_u32(&mut r)?;
            if to as usize >= n || rank[to as usize] <= rank[v] {
                return Err(LoadError::Format(format!(
                    "arc {from}→n{to} does not point upward"
                )));
            }
            if middle != NO_NODE.0 && middle as usize >= n {
                return Err(LoadError::Format(format!("bad middle node {middle}")));
            }
            up_lists[v].push(UpArc {
                to: NodeId(to),
                weight,
                middle: NodeId(middle),
            });
        }
    }
    if num_shortcuts as usize > num_arcs {
        return Err(LoadError::Format("more shortcuts than arcs".into()));
    }

    Ok(ContractionHierarchy::from_up_lists(
        n,
        seed,
        rank,
        order,
        up_lists,
        num_shortcuts,
    ))
}

/// [`write_hierarchy`] to a file path.
pub fn save_hierarchy(ch: &ContractionHierarchy, path: impl AsRef<Path>) -> io::Result<()> {
    write_hierarchy(ch, File::create(path)?)
}

/// [`read_hierarchy`] from a file path.
pub fn load_hierarchy(path: impl AsRef<Path>) -> Result<ContractionHierarchy, LoadError> {
    read_hierarchy(File::open(path)?)
}

// ---------------------------------------------------------------------------
// Hub-label snapshots: same container discipline, own magic. Stored next to
// the hierarchy they were extracted from (the seed ties the two together so
// a label file cannot be paired with a foreign hierarchy undetected).

const LABEL_MAGIC: &[u8; 4] = b"DSHL";
const LABEL_VERSION: u32 = 1;

/// Write a hub-label snapshot.
pub fn write_labels<W: Write>(hl: &HubLabels, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(LABEL_MAGIC)?;
    put_u32(&mut w, LABEL_VERSION)?;

    let mut w = FrameWriter::new(w);
    put_u64(&mut w, hl.seed)?;
    put_u32(&mut w, hl.n as u32)?;
    for &i in &hl.index {
        put_u32(&mut w, i)?;
    }
    for (&h, &d) in hl.hubs.iter().zip(&hl.dists) {
        put_u32(&mut w, h.0)?;
        put_u32(&mut w, d)?;
    }
    w.finish()?.flush()
}

/// Read a hub-label snapshot. Structural validation mirrors the hierarchy
/// loader: the CSR index must be monotone from 0 and every label's hubs
/// strictly ascending in-range with a zero-distance self entry — damage is
/// detected, never served.
pub fn read_labels<R: Read>(r: R) -> Result<HubLabels, LoadError> {
    let mut r = BufReader::new(r);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != LABEL_MAGIC {
        return Err(LoadError::Format("not a hub-label snapshot".into()));
    }
    let v = get_u32(&mut r)?;
    if v != LABEL_VERSION {
        return Err(LoadError::Format(format!(
            "label snapshot version {v}, expected {LABEL_VERSION}"
        )));
    }

    let mut r = FrameReader::new(r);
    let seed = get_u64(&mut r)?;
    let n = get_u32(&mut r)? as usize;
    let mut index = Vec::with_capacity((n + 1).min(MAX_RESERVE));
    for i in 0..=n {
        let off = get_u32(&mut r)?;
        if i == 0 && off != 0 {
            return Err(LoadError::Format("label index does not start at 0".into()));
        }
        if let Some(&prev) = index.last() {
            if off < prev {
                return Err(LoadError::Format("label index not monotone".into()));
            }
        }
        index.push(off);
    }
    let num_entries = *index.last().expect("non-empty index") as usize;
    let mut hubs = Vec::with_capacity(num_entries.min(MAX_RESERVE));
    let mut dists = Vec::with_capacity(num_entries.min(MAX_RESERVE));
    for v in 0..n {
        let mut self_entry = false;
        for e in index[v]..index[v + 1] {
            let h = get_u32(&mut r)?;
            let d = get_u32(&mut r)?;
            if h as usize >= n {
                return Err(LoadError::Format(format!("hub n{h} out of range")));
            }
            if e > index[v] && hubs.last().is_some_and(|&p: &NodeId| p.0 >= h) {
                return Err(LoadError::Format(format!("hubs of n{v} not ascending")));
            }
            if h as usize == v {
                if d != 0 {
                    return Err(LoadError::Format(format!("self entry of n{v} not 0")));
                }
                self_entry = true;
            }
            hubs.push(NodeId(h));
            dists.push(d);
        }
        if !self_entry {
            return Err(LoadError::Format(format!("n{v} missing its self entry")));
        }
    }

    Ok(HubLabels {
        n,
        seed,
        index,
        hubs,
        dists,
    })
}

/// [`write_labels`] to a file path.
pub fn save_labels(hl: &HubLabels, path: impl AsRef<Path>) -> io::Result<()> {
    write_labels(hl, File::create(path)?)
}

/// [`read_labels`] from a file path.
pub fn load_labels(path: impl AsRef<Path>) -> Result<HubLabels, LoadError> {
    read_labels(File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ChConfig;
    use crate::{ChWorkspace, PhastWorkspace};
    use dsi_graph::generate::grid;
    use dsi_graph::sssp;

    fn roundtrip(ch: &ContractionHierarchy) -> Vec<u8> {
        let mut buf = Vec::new();
        write_hierarchy(ch, &mut buf).expect("write");
        buf
    }

    #[test]
    fn snapshot_roundtrips_identically() {
        let g = grid(7, 7);
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        let buf = roundtrip(&ch);
        let back = read_hierarchy(&buf[..]).expect("read");
        assert_eq!(back.seed(), ch.seed());
        assert_eq!(back.rank, ch.rank);
        assert_eq!(back.order, ch.order);
        assert_eq!(back.up_index, ch.up_index);
        assert_eq!(back.up_arcs, ch.up_arcs);
        assert_eq!(back.sweep_index, ch.sweep_index);
        assert_eq!(back.sweep_arcs, ch.sweep_arcs);
        assert_eq!(back.up_step_bound, ch.up_step_bound);
        // And it still answers: spot-check p2p + PHAST against Dijkstra.
        let mut ws = ChWorkspace::new();
        let tree = sssp(&g, NodeId(0));
        assert_eq!(back.p2p(NodeId(0), NodeId(48), &mut ws), tree.dist[48]);
        let mut ph = PhastWorkspace::new();
        back.sssp_phast(NodeId(0), &mut ph);
        assert_eq!(ph.dists(), &tree.dist[..]);
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let g = grid(4, 4);
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        let buf = roundtrip(&ch);
        // Flip one bit in every byte position past the preamble; each
        // corrupted snapshot must be rejected, never silently loaded.
        for pos in (8..buf.len()).step_by(7) {
            let mut bad = buf.clone();
            bad[pos] ^= 0x10;
            assert!(
                read_hierarchy(&bad[..]).is_err(),
                "bit flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn truncation_and_bad_preamble_are_rejected() {
        let g = grid(4, 4);
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        let buf = roundtrip(&ch);
        for cut in [0, 3, 9, buf.len() / 2, buf.len() - 1] {
            assert!(read_hierarchy(&buf[..cut]).is_err(), "truncated at {cut}");
        }
        let mut wrong_magic = buf.clone();
        wrong_magic[0] = b'X';
        assert!(read_hierarchy(&wrong_magic[..]).is_err());
    }

    fn label_roundtrip(hl: &HubLabels) -> Vec<u8> {
        let mut buf = Vec::new();
        write_labels(hl, &mut buf).expect("write");
        buf
    }

    #[test]
    fn label_snapshot_roundtrips_identically() {
        let g = grid(7, 7);
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        let hl = HubLabels::build(&ch);
        let back = read_labels(&label_roundtrip(&hl)[..]).expect("read");
        assert_eq!(back, hl);
        assert_eq!(back.seed(), ch.seed());
        // And it still answers.
        let tree = sssp(&g, NodeId(0));
        assert_eq!(back.p2p(NodeId(0), NodeId(48)), tree.dist[48]);
    }

    #[test]
    fn label_bit_flips_and_truncation_are_detected() {
        let g = grid(4, 4);
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        let hl = HubLabels::build(&ch);
        let buf = label_roundtrip(&hl);
        for pos in (8..buf.len()).step_by(7) {
            let mut bad = buf.clone();
            bad[pos] ^= 0x10;
            assert!(
                read_labels(&bad[..]).is_err(),
                "bit flip at byte {pos} went undetected"
            );
        }
        for cut in [0, 3, 9, buf.len() / 2, buf.len() - 1] {
            assert!(read_labels(&buf[..cut]).is_err(), "truncated at {cut}");
        }
        let mut wrong_magic = buf.clone();
        wrong_magic[0] = b'X';
        assert!(read_labels(&wrong_magic[..]).is_err());
    }
}
