//! CH preprocessing: edge-difference node ordering and shortcut insertion.
//!
//! Contraction works on a mutable *overlay* of the road network: the
//! original (non-removed) edges plus every shortcut added so far, with
//! contracted nodes detached as they go. Removing node `v` must preserve
//! all pairwise distances among the remaining nodes, so for every pair of
//! current neighbors `(u, w)` a bounded *witness search* from `u` avoiding
//! `v` decides whether the path `u–v–w` is dispensable; if no witness of
//! length ≤ `w(u,v) + w(v,w)` exists, the shortcut `(u, w)` is inserted
//! with that weight and `v` recorded as its middle node (for unpacking).
//!
//! Witness searches are Dijkstra runs on the overlay through
//! [`SsspWorkspace`]'s external API, bounded two ways: by the target
//! distance (keys past the limit cannot matter) and by a settled-node cap
//! ([`ChConfig::witness_cap`]). A truncated search conservatively inserts
//! the shortcut — its weight is still the length of a real path, so query
//! answers stay exact; only the arc count grows.
//!
//! Node order is picked by a lazily-updated priority queue over
//! `8·edge_difference + 2·deleted_neighbors`, the standard cheap heuristic:
//! edge difference (shortcuts added minus arcs removed) keeps the hierarchy
//! sparse, the deleted-neighbors term spreads contraction uniformly across
//! the network. Ties break on a seeded hash of the node id
//! ([`ChConfig::seed`]), making the ordering — and therefore every
//! downstream artifact — deterministic for a given seed.

use dsi_graph::{Dist, NodeId, RoadNetwork, SsspWorkspace, INFINITY, NO_NODE};

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Preprocessing parameters.
#[derive(Clone, Copy, Debug)]
pub struct ChConfig {
    /// Seed for the deterministic ordering tie-break.
    pub seed: u64,
    /// Settled-node cap per witness search. Lower is faster but inserts
    /// more (still-correct) shortcuts; `usize::MAX` means exact witnesses.
    pub witness_cap: usize,
}

impl Default for ChConfig {
    fn default() -> Self {
        ChConfig {
            seed: 0xC4_5EED,
            witness_cap: 256,
        }
    }
}

/// One upward arc of the finished hierarchy: from its owner (the
/// lower-ranked endpoint) to `to`, of length `weight`. `middle` is the
/// contracted node this shortcut bridges, or [`NO_NODE`] for an original
/// road-network edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpArc {
    pub to: NodeId,
    pub weight: Dist,
    pub middle: NodeId,
}

/// An arc of the mutable contraction overlay (same shape as [`UpArc`], but
/// lists are kept symmetric and shrink as nodes are detached).
#[derive(Clone, Copy, Debug)]
struct OvArc {
    to: NodeId,
    weight: Dist,
    middle: NodeId,
}

/// The finished hierarchy: per-node rank, upward arcs in CSR form, and the
/// mirrored downward arcs used by the PHAST sweep.
#[derive(Clone, Debug)]
pub struct ContractionHierarchy {
    pub(crate) n: usize,
    pub(crate) seed: u64,
    /// `rank[v]` = position of `v` in contraction order (0 = first).
    pub(crate) rank: Vec<u32>,
    /// `order[r]` = node with rank `r`.
    pub(crate) order: Vec<NodeId>,
    /// CSR over nodes: `up_arcs[up_index[v]..up_index[v+1]]` are `v`'s
    /// arcs toward higher-ranked nodes.
    pub(crate) up_index: Vec<u32>,
    pub(crate) up_arcs: Vec<UpArc>,
    /// CSR mirror of `up_arcs` for the PHAST sweep, laid out in
    /// *descending rank* order: segment `i` holds the downward arcs of
    /// `order[n-1-i]`, so the sweep walks `sweep_arcs` strictly
    /// sequentially.
    pub(crate) sweep_index: Vec<u32>,
    pub(crate) sweep_arcs: Vec<(NodeId, Dist)>,
    /// Max upward-arc weight: the key step bound for upward searches.
    pub(crate) up_step_bound: Dist,
    pub(crate) num_shortcuts: u32,
}

impl ContractionHierarchy {
    /// Contract `net` into a hierarchy. Deterministic for a given
    /// `cfg.seed` — identical ranks, shortcuts, and arc order every run.
    pub fn build(net: &RoadNetwork, cfg: &ChConfig) -> ContractionHierarchy {
        let n = net.num_nodes();

        // Overlay = current (non-removed) edges; parallel edges collapse to
        // their minimum, self-loops never help a shortest path.
        let mut overlay: Vec<Vec<OvArc>> = vec![Vec::new(); n];
        let mut max_w: Dist = 1;
        for u in net.nodes() {
            for (_, v, w) in net.neighbors(u) {
                if w == INFINITY || v == u || v.index() < u.index() {
                    continue;
                }
                add_arc(&mut overlay, u, v, w, NO_NODE);
                max_w = max_w.max(w);
            }
        }

        let mut alive = vec![true; n];
        let mut deleted = vec![0u32; n];
        let mut ws = SsspWorkspace::new();
        let mut plan: Vec<(NodeId, NodeId, Dist)> = Vec::new();

        // Lazy-update ordering queue: (priority, seeded tie, node id).
        let mut heap: BinaryHeap<Reverse<(i64, u64, u32)>> = BinaryHeap::with_capacity(n);
        for v in 0..n as u32 {
            let node = NodeId(v);
            let p = priority(
                &overlay,
                node,
                deleted[v as usize],
                &mut ws,
                &mut plan,
                cfg.witness_cap,
                max_w,
                n,
            );
            heap.push(Reverse((p, tie_break(cfg.seed, v), v)));
        }

        let mut rank = vec![0u32; n];
        let mut order = Vec::with_capacity(n);
        let mut up_lists: Vec<Vec<UpArc>> = vec![Vec::new(); n];
        let mut num_shortcuts = 0u32;

        while let Some(Reverse((_, t, vi))) = heap.pop() {
            let v = NodeId(vi);
            if !alive[v.index()] {
                continue;
            }
            // Lazy update: the node's surroundings may have changed since
            // it was queued. Recompute; if it no longer beats the queue
            // head, requeue and try again.
            let p = priority(
                &overlay,
                v,
                deleted[v.index()],
                &mut ws,
                &mut plan,
                cfg.witness_cap,
                max_w,
                n,
            );
            if let Some(&Reverse(top)) = heap.peek() {
                if (p, t, vi) > top {
                    heap.push(Reverse((p, t, vi)));
                    continue;
                }
            }

            // Contract v: `plan` still holds the shortcut set computed by
            // the priority call above (the overlay has not changed since).
            for &(a, b, through) in &plan {
                if add_arc(&mut overlay, a, b, through, v) {
                    num_shortcuts += 1;
                }
                max_w = max_w.max(through);
            }
            // Record v's arcs as its upward arcs (every remaining neighbor
            // outranks it), then detach v from the overlay.
            up_lists[v.index()] = overlay[v.index()]
                .iter()
                .map(|a| UpArc {
                    to: a.to,
                    weight: a.weight,
                    middle: a.middle,
                })
                .collect();
            let nbrs: Vec<NodeId> = overlay[v.index()].iter().map(|a| a.to).collect();
            for u in nbrs {
                overlay[u.index()].retain(|a| a.to != v);
                deleted[u.index()] += 1;
            }
            overlay[v.index()].clear();
            alive[v.index()] = false;
            rank[v.index()] = order.len() as u32;
            order.push(v);
        }
        debug_assert_eq!(order.len(), n);

        Self::from_up_lists(n, cfg.seed, rank, order, up_lists, num_shortcuts)
    }

    /// Assemble the CSR arrays (shared by [`Self::build`] and the
    /// persistence loader).
    pub(crate) fn from_up_lists(
        n: usize,
        seed: u64,
        rank: Vec<u32>,
        order: Vec<NodeId>,
        up_lists: Vec<Vec<UpArc>>,
        num_shortcuts: u32,
    ) -> ContractionHierarchy {
        let mut up_index = Vec::with_capacity(n + 1);
        up_index.push(0u32);
        let mut up_arcs = Vec::new();
        let mut up_step_bound: Dist = 1;
        let mut down_lists: Vec<Vec<(NodeId, Dist)>> = vec![Vec::new(); n];
        for (v, list) in up_lists.iter().enumerate() {
            for a in list {
                up_arcs.push(*a);
                up_step_bound = up_step_bound.max(a.weight);
                down_lists[a.to.index()].push((NodeId(v as u32), a.weight));
            }
            up_index.push(up_arcs.len() as u32);
        }
        let mut sweep_index = Vec::with_capacity(n + 1);
        sweep_index.push(0u32);
        let mut sweep_arcs = Vec::with_capacity(up_arcs.len());
        for i in (0..n).rev() {
            sweep_arcs.extend_from_slice(&down_lists[order[i].index()]);
            sweep_index.push(sweep_arcs.len() as u32);
        }
        ContractionHierarchy {
            n,
            seed,
            rank,
            order,
            up_index,
            up_arcs,
            sweep_index,
            sweep_arcs,
            up_step_bound,
            num_shortcuts,
        }
    }

    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Contraction rank of `v` (0 = contracted first = lowest).
    #[inline]
    pub fn rank_of(&self, v: NodeId) -> u32 {
        self.rank[v.index()]
    }

    /// Nodes in ascending rank order.
    #[inline]
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// `v`'s arcs toward higher-ranked nodes.
    #[inline]
    pub fn up_arcs_of(&self, v: NodeId) -> &[UpArc] {
        &self.up_arcs[self.up_index[v.index()] as usize..self.up_index[v.index() + 1] as usize]
    }

    /// Shortcut arcs added on top of the original edges.
    #[inline]
    pub fn num_shortcuts(&self) -> u32 {
        self.num_shortcuts
    }

    /// Total upward arcs (original + shortcut).
    #[inline]
    pub fn num_up_arcs(&self) -> usize {
        self.up_arcs.len()
    }

    /// Ordering seed the hierarchy was built with.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Max upward-arc weight: the monotone-queue step bound for searches
    /// over this hierarchy.
    #[inline]
    pub fn up_step_bound(&self) -> Dist {
        self.up_step_bound
    }

    /// The hierarchy arc between `u` and `v` (stored on the lower-ranked
    /// endpoint), as `(weight, middle)`.
    pub fn arc_between(&self, u: NodeId, v: NodeId) -> Option<(Dist, NodeId)> {
        let (lo, hi) = if self.rank[u.index()] < self.rank[v.index()] {
            (u, v)
        } else {
            (v, u)
        };
        self.up_arcs_of(lo)
            .iter()
            .find(|a| a.to == hi)
            .map(|a| (a.weight, a.middle))
    }

    /// Expand the hierarchy arc `u – v` into the original-edge path it
    /// stands for, as `(from, to, weight)` segments from `u` to `v`.
    /// Shortcuts recurse through their middle nodes; an original edge
    /// yields itself. Panics if no arc joins `u` and `v`.
    pub fn unpack_arc(&self, u: NodeId, v: NodeId) -> Vec<(NodeId, NodeId, Dist)> {
        let mut out = Vec::new();
        self.unpack_into(u, v, &mut out);
        out
    }

    fn unpack_into(&self, u: NodeId, v: NodeId, out: &mut Vec<(NodeId, NodeId, Dist)>) {
        let (w, middle) = self
            .arc_between(u, v)
            .unwrap_or_else(|| panic!("no hierarchy arc between {u} and {v}"));
        if middle == NO_NODE {
            out.push((u, v, w));
        } else {
            self.unpack_into(u, middle, out);
            self.unpack_into(middle, v, out);
        }
    }
}

/// SplitMix64 finalizer over `seed ^ node`: the deterministic ordering
/// tie-break.
fn tie_break(seed: u64, node: u32) -> u64 {
    let mut z = seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Insert or improve the symmetric overlay arc `u – v` of weight `w` via
/// `middle`. Returns `true` if this created a new arc (vs improving or
/// being dominated by an existing one).
fn add_arc(overlay: &mut [Vec<OvArc>], u: NodeId, v: NodeId, w: Dist, middle: NodeId) -> bool {
    if let Some(a) = overlay[u.index()].iter_mut().find(|a| a.to == v) {
        if w < a.weight {
            a.weight = w;
            a.middle = middle;
            let back = overlay[v.index()]
                .iter_mut()
                .find(|a| a.to == u)
                .expect("overlay arcs are symmetric");
            back.weight = w;
            back.middle = middle;
        }
        return false;
    }
    overlay[u.index()].push(OvArc {
        to: v,
        weight: w,
        middle,
    });
    overlay[v.index()].push(OvArc {
        to: u,
        weight: w,
        middle,
    });
    true
}

/// Compute `v`'s contraction priority and leave the shortcut set its
/// contraction would insert in `plan`.
///
/// For every neighbor pair `(u, w)` the path `u–v–w` needs a shortcut
/// unless a witness search from `u`, avoiding `v`, reaches `w` within
/// `w(u,v) + w(v,w)`. One bounded search per source `u` covers all its
/// pair partners.
#[allow(clippy::too_many_arguments)]
fn priority(
    overlay: &[Vec<OvArc>],
    v: NodeId,
    deleted: u32,
    ws: &mut SsspWorkspace,
    plan: &mut Vec<(NodeId, NodeId, Dist)>,
    witness_cap: usize,
    step_bound: Dist,
    n: usize,
) -> i64 {
    plan.clear();
    let nbrs = &overlay[v.index()];
    for i in 0..nbrs.len() {
        let (u, wu) = (nbrs[i].to, nbrs[i].weight);
        let Some(rest_max) = nbrs[i + 1..].iter().map(|a| a.weight).max() else {
            break;
        };
        witness_search(
            overlay,
            ws,
            u,
            v,
            wu.saturating_add(rest_max),
            witness_cap,
            step_bound,
            n,
        );
        for a in &nbrs[i + 1..] {
            let through = wu.saturating_add(a.weight);
            // `ws.dist` is an upper bound on the best witness (searches
            // may be truncated), so a missing witness is conservative:
            // the shortcut weight is still a real path length.
            if ws.dist(a.to) > through {
                plan.push((u, a.to, through));
            }
        }
    }
    (plan.len() as i64 - nbrs.len() as i64) * 8 + deleted as i64 * 2
}

/// Bounded Dijkstra from `source` on the overlay, never entering
/// `excluded`; stops once popped keys reach `limit` or `cap` nodes
/// settled. Labels left in `ws` are valid path lengths avoiding
/// `excluded`.
#[allow(clippy::too_many_arguments)]
fn witness_search(
    overlay: &[Vec<OvArc>],
    ws: &mut SsspWorkspace,
    source: NodeId,
    excluded: NodeId,
    limit: Dist,
    cap: usize,
    step_bound: Dist,
    n: usize,
) {
    ws.begin_external(n, step_bound);
    ws.improve(source, 0);
    let mut settled = 0usize;
    while let Some((x, d)) = ws.pop_settled() {
        settled += 1;
        if d >= limit || settled >= cap {
            break;
        }
        for a in &overlay[x.index()] {
            if a.to != excluded {
                ws.improve(a.to, d + a.weight);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_graph::generate::grid;

    #[test]
    fn every_node_gets_a_unique_rank() {
        let g = grid(8, 8);
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        let mut seen = vec![false; g.num_nodes()];
        for v in g.nodes() {
            let r = ch.rank_of(v) as usize;
            assert!(!seen[r], "duplicate rank {r}");
            seen[r] = true;
            assert_eq!(ch.order()[r], v);
        }
    }

    #[test]
    fn up_arcs_point_strictly_upward() {
        let g = grid(10, 10);
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        let mut arcs = 0;
        for v in g.nodes() {
            for a in ch.up_arcs_of(v) {
                assert!(ch.rank_of(a.to) > ch.rank_of(v));
                arcs += 1;
            }
        }
        assert_eq!(arcs, ch.num_up_arcs());
        assert_eq!(
            arcs,
            g.num_edges() + ch.num_shortcuts() as usize,
            "every original edge plus every shortcut appears exactly once"
        );
    }

    #[test]
    fn same_seed_is_deterministic_and_seeds_differ() {
        let g = grid(9, 9);
        let a = ContractionHierarchy::build(&g, &ChConfig::default());
        let b = ContractionHierarchy::build(&g, &ChConfig::default());
        assert_eq!(a.rank, b.rank);
        assert_eq!(a.up_arcs, b.up_arcs);
        let c = ContractionHierarchy::build(
            &g,
            &ChConfig {
                seed: 99,
                ..Default::default()
            },
        );
        // On a symmetric grid the ordering is pure tie-break, so a new
        // seed virtually always permutes it.
        assert_ne!(a.rank, c.rank, "tie-break ignored the seed");
    }

    #[test]
    fn truncated_witnesses_only_add_arcs() {
        let g = grid(8, 8);
        let exact = ContractionHierarchy::build(
            &g,
            &ChConfig {
                witness_cap: usize::MAX,
                ..Default::default()
            },
        );
        let lazy = ContractionHierarchy::build(
            &g,
            &ChConfig {
                witness_cap: 3,
                ..Default::default()
            },
        );
        assert!(lazy.num_up_arcs() >= exact.num_up_arcs());
        // Both must answer identically (checked exhaustively in the
        // query-module tests; here just spot distances).
        let mut wa = crate::ChWorkspace::new();
        let mut wb = crate::ChWorkspace::new();
        for (s, t) in [(0u32, 63u32), (7, 56), (27, 36)] {
            assert_eq!(
                exact.p2p(NodeId(s), NodeId(t), &mut wa),
                lazy.p2p(NodeId(s), NodeId(t), &mut wb)
            );
        }
    }
}
