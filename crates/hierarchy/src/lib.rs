//! Contraction-hierarchy distance oracle over [`dsi_graph::RoadNetwork`].
//!
//! The signature index (the paper's contribution) buys IO-efficient range /
//! kNN / CNN processing, but two things stay bounded by flat Dijkstra over
//! the whole network: raw point-to-point distance, and index *construction*,
//! which runs one full SSSP per object (§5.2). A contraction hierarchy
//! (Geisberger et al.; see "Towards Bridging Theory and Practice in Route
//! Planning", arXiv 1304.2576) fixes both:
//!
//! * **Preprocessing** ([`build`]): contract nodes one at a time in
//!   edge-difference order, inserting a shortcut for every neighbor pair
//!   whose shortest path ran through the contracted node and has no witness
//!   avoiding it. The result assigns every node a *rank* and keeps, per
//!   node, only its **upward** arcs (toward higher rank).
//! * **Point-to-point** ([`ContractionHierarchy::p2p`]): a bidirectional
//!   Dijkstra where both sides only climb upward arcs — search spaces are
//!   a few hundred nodes where flat Dijkstra settles the whole network.
//! * **Full SSSP** ([`ContractionHierarchy::sssp_phast`]): PHAST — one tiny
//!   upward search, then a single linear sweep down the ranks with no
//!   priority queue. This is the construction accelerator: per-object
//!   distance vectors for index builds without per-object full Dijkstra.
//! * **Hub labels** ([`labels`]): canonical 2-hop labels extracted from the
//!   hierarchy's upward search spaces — point-to-point becomes one sorted
//!   merge of two small arrays ([`HubLabels::p2p`]), one-to-many one pass
//!   over hub-grouped buckets ([`HubLabels::one_to_many`]); no graph
//!   traversal at query time at all.
//!
//! Witness searches, upward searches, and the PHAST upward phase all run on
//! [`dsi_graph::SsspWorkspace`] through its external-search API
//! (`begin_external` / `improve` / `pop_settled`), so the epoch-stamped
//! arrays and queue substrates are shared with the flat engine rather than
//! reimplemented.
//!
//! The oracle is persistable ([`persist`]) in the same framed, CRC-32
//! checksummed container as the signature index's format v3.

pub mod build;
pub mod labels;
pub mod persist;
pub mod phast;
pub mod query;

pub use build::{ChConfig, ContractionHierarchy, UpArc};
pub use labels::{HubLabels, LabelBuckets};
pub use persist::{
    load_hierarchy, load_labels, read_hierarchy, read_labels, save_hierarchy, save_labels,
    write_hierarchy, write_labels,
};
pub use phast::PhastWorkspace;
pub use query::ChWorkspace;
