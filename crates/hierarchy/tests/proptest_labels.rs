//! Property tests pinning the hub-label oracle to ground truth: on random
//! (possibly disconnected) networks, a label merge must equal both the
//! contraction-hierarchy p2p search and plain Dijkstra for every sampled
//! pair — including unreachable pairs, where all three agree on
//! [`INFINITY`] — and every built label must satisfy the canonicality
//! invariant (sorted hubs, a zero-distance self entry, no entry prunable
//! through another shared hub).

use dsi_graph::ids::dist_add;
use dsi_graph::{sssp, NetworkBuilder, NodeId, Point, RoadNetwork, INFINITY};
use dsi_hierarchy::{ChConfig, ChWorkspace, ContractionHierarchy, HubLabels};
use proptest::prelude::*;

/// One or two ring-with-chords clusters, bridged by zero or more extra
/// edges. With two clusters and no bridges the network is disconnected —
/// the case where the oracle must answer `INFINITY`, never a junk merge.
fn arb_network() -> impl Strategy<Value = RoadNetwork> {
    (
        3usize..14,
        0usize..14,
        proptest::collection::vec((0usize..28, 0usize..28, 1u32..40), 0..24),
        proptest::collection::vec(1u32..40, 28),
        proptest::collection::vec((0usize..28, 0usize..28, 1u32..40), 0..3),
    )
        .prop_map(|(n1, n2, chords, ring_w, bridges)| {
            let mut b = NetworkBuilder::new();
            let n = n1 + n2;
            let ids: Vec<NodeId> = (0..n)
                .map(|i| b.add_node(Point::new(i as f64, (i * i % 5) as f64)))
                .collect();
            let mut ring = |lo: usize, len: usize| {
                if len < 2 {
                    return;
                }
                for i in 0..len {
                    let (u, v) = (ids[lo + i], ids[lo + (i + 1) % len]);
                    if u != v && !b.has_edge(u, v) {
                        b.add_edge(u, v, ring_w[lo + i]);
                    }
                }
            };
            ring(0, n1);
            ring(n1, n2);
            // Chords stay inside their cluster so only `bridges` connect.
            for (u, v, w) in chords {
                let (u, v) = if u % 2 == 0 || n2 == 0 {
                    (u % n1, v % n1)
                } else {
                    (n1 + u % n2, n1 + v % n2)
                };
                if u != v && !b.has_edge(ids[u], ids[v]) {
                    b.add_edge(ids[u], ids[v], w);
                }
            }
            if n2 > 0 {
                // An empty bridge set leaves the two clusters disconnected.
                for (u, v, w) in bridges {
                    let (u, v) = (u % n1, n1 + v % n2);
                    if !b.has_edge(ids[u], ids[v]) {
                        b.add_edge(ids[u], ids[v], w);
                    }
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Three oracles, one answer: label merge == CH p2p == Dijkstra on
    /// every (source, target) pair, reachable or not.
    #[test]
    fn label_merge_matches_ch_and_dijkstra(net in arb_network(), src in 0usize..28) {
        let ch = ContractionHierarchy::build(&net, &ChConfig::default());
        let hl = HubLabels::build(&ch);
        let mut ws = ChWorkspace::new();
        let s = NodeId((src % net.num_nodes()) as u32);
        let tree = sssp(&net, s);
        for t in net.nodes() {
            let want = tree.dist[t.index()];
            prop_assert_eq!(hl.p2p(s, t), want, "labels vs dijkstra at ({}, {})", s, t);
            prop_assert_eq!(ch.p2p(s, t, &mut ws), want, "ch vs dijkstra at ({}, {})", s, t);
        }
    }

    /// Built labels are canonical: hubs strictly ascending, a `(v, 0)`
    /// self entry, and no entry covered by a two-hop route through any
    /// *other* hub the two labels share.
    #[test]
    fn labels_are_canonical(net in arb_network()) {
        let ch = ContractionHierarchy::build(&net, &ChConfig::default());
        let hl = HubLabels::build(&ch);
        for v in net.nodes() {
            let (hs, ds) = hl.label_of(v);
            prop_assert!(hs.windows(2).all(|w| w[0] < w[1]), "hubs of {} unsorted", v);
            let self_at = hs.binary_search(&v);
            prop_assert!(self_at.is_ok(), "{} missing its self entry", v);
            prop_assert_eq!(ds[self_at.unwrap()], 0, "self entry of {} nonzero", v);
            for (&h, &d) in hs.iter().zip(ds) {
                if h == v {
                    continue;
                }
                let (hh, hd) = hl.label_of(h);
                let mut alt = INFINITY;
                for (&x, &dx) in hs.iter().zip(ds) {
                    if x == h {
                        continue;
                    }
                    if let Ok(i) = hh.binary_search(&x) {
                        alt = alt.min(dist_add(dx, hd[i]));
                    }
                }
                prop_assert!(alt > d, "entry ({}, {}) of {} prunable via {}", h, d, v, alt);
            }
        }
    }

    /// The one-to-many bucket scan returns exactly the pairwise merges.
    #[test]
    fn one_to_many_matches_pairwise(net in arb_network(), picks in proptest::collection::vec(0usize..28, 1..8)) {
        let ch = ContractionHierarchy::build(&net, &ChConfig::default());
        let hl = HubLabels::build(&ch);
        let targets: Vec<NodeId> = picks
            .iter()
            .map(|&p| NodeId((p % net.num_nodes()) as u32))
            .collect();
        let buckets = hl.buckets(&targets);
        let mut out = Vec::new();
        for s in net.nodes() {
            hl.one_to_many(s, &buckets, &mut out);
            for (i, &t) in targets.iter().enumerate() {
                prop_assert_eq!(out[i], hl.p2p(s, t), "one-to-many ({}, {})", s, t);
            }
        }
    }
}
