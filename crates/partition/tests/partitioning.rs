//! Property tests pinning the partitioner's invariants: every node lands in
//! exactly one region, every cut edge is recorded on both sides, boundary
//! lists are exactly the cut-incident nodes, and regions grown on a
//! connected network are connected.

use dsi_graph::{NetworkBuilder, NodeId, Point, RoadNetwork};
use dsi_partition::{CutEdge, Partitioning};
use proptest::prelude::*;
use std::collections::HashSet;

/// Ring + random chords: always connected, arbitrary weights.
fn arb_network() -> impl Strategy<Value = RoadNetwork> {
    (
        3usize..40,
        proptest::collection::vec((0usize..40, 0usize..40, 1u32..30), 0..60),
        proptest::collection::vec(1u32..30, 40),
    )
        .prop_map(|(n, chords, ring_w)| {
            let mut b = NetworkBuilder::new();
            let ids: Vec<NodeId> = (0..n)
                .map(|i| b.add_node(Point::new(i as f64, (i * i % 7) as f64)))
                .collect();
            for i in 0..n {
                b.add_edge(ids[i], ids[(i + 1) % n], ring_w[i]);
            }
            for (u, v, w) in chords {
                let (u, v) = (u % n, v % n);
                if u != v && !b.has_edge(ids[u], ids[v]) {
                    b.add_edge(ids[u], ids[v], w);
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_node_lands_in_exactly_one_region(
        net in arb_network(),
        k in 1usize..9,
    ) {
        let part = Partitioning::new(&net, k);
        let n = net.num_nodes();
        prop_assert!(part.num_parts() >= 1 && part.num_parts() <= n.min(k).max(1));

        // The region node lists are sorted, disjoint, and cover the node
        // set; `part_of` agrees with them.
        let mut owner = vec![usize::MAX; n];
        for p in 0..part.num_parts() {
            let nodes = part.nodes(p);
            prop_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "region {p} unsorted");
            for &v in nodes {
                prop_assert_eq!(owner[v.index()], usize::MAX, "node owned twice");
                owner[v.index()] = p;
            }
        }
        for v in net.nodes() {
            prop_assert_eq!(owner[v.index()], part.part_of(v), "part_of disagrees");
        }
        prop_assert!(owner.iter().all(|&p| p != usize::MAX), "node unowned");
    }

    #[test]
    fn every_cut_edge_is_recorded_on_both_sides(
        net in arb_network(),
        k in 1usize..9,
    ) {
        let part = Partitioning::new(&net, k);

        // Every recorded cut is a real cross-region edge, and its mirror is
        // recorded by the other side.
        let mut directed = 0usize;
        for p in 0..part.num_parts() {
            for cut in part.cuts(p) {
                directed += 1;
                prop_assert_eq!(part.part_of(cut.local), p);
                prop_assert_ne!(part.part_of(cut.remote), p);
                prop_assert_eq!(net.edge_weight(cut.local, cut.remote), Some(cut.weight));
                let mirror = CutEdge {
                    local: cut.remote,
                    remote: cut.local,
                    weight: cut.weight,
                };
                prop_assert!(
                    part.cuts(part.part_of(cut.remote)).contains(&mirror),
                    "mirror of {cut:?} missing"
                );
            }
        }
        prop_assert_eq!(part.num_cut_edges(), directed / 2);

        // Conversely, every cross-region edge of the network is recorded.
        for u in net.nodes() {
            for (_, v, w) in net.neighbors(u) {
                let pu = part.part_of(u);
                if part.part_of(v) != pu {
                    let cut = CutEdge { local: u, remote: v, weight: w };
                    prop_assert!(part.cuts(pu).contains(&cut), "{cut:?} unrecorded");
                }
            }
        }
    }

    #[test]
    fn boundary_lists_are_exactly_the_cut_incident_nodes(
        net in arb_network(),
        k in 1usize..9,
    ) {
        let part = Partitioning::new(&net, k);
        for p in 0..part.num_parts() {
            let expect: HashSet<NodeId> = part.cuts(p).iter().map(|c| c.local).collect();
            let got: Vec<NodeId> = part.boundary(p).to_vec();
            prop_assert!(got.windows(2).all(|w| w[0] < w[1]), "boundary unsorted");
            prop_assert_eq!(got.len(), expect.len());
            prop_assert!(got.iter().all(|b| expect.contains(b)));
        }
        if part.num_parts() == 1 {
            prop_assert_eq!(part.boundary(0).len(), 0);
            prop_assert_eq!(part.num_cut_edges(), 0);
        }
    }

    #[test]
    fn regions_grown_on_a_connected_network_are_connected(
        net in arb_network(),
        k in 1usize..9,
    ) {
        let part = Partitioning::new(&net, k);
        for p in 0..part.num_parts() {
            let nodes = part.nodes(p);
            let inside: HashSet<NodeId> = nodes.iter().copied().collect();
            let mut seen = HashSet::from([nodes[0]]);
            let mut stack = vec![nodes[0]];
            while let Some(u) = stack.pop() {
                for (_, v, _) in net.neighbors(u) {
                    if inside.contains(&v) && seen.insert(v) {
                        stack.push(v);
                    }
                }
            }
            prop_assert_eq!(seen.len(), nodes.len(), "region {p} disconnected");
        }
    }

    #[test]
    fn assignment_round_trips_through_from_part_of(
        net in arb_network(),
        k in 1usize..9,
    ) {
        let part = Partitioning::new(&net, k);
        let back = Partitioning::from_part_of(&net, part.num_parts(), part.assignment().to_vec());
        for p in 0..part.num_parts() {
            prop_assert_eq!(part.nodes(p), back.nodes(p));
            prop_assert_eq!(part.boundary(p), back.boundary(p));
            prop_assert_eq!(part.cuts(p), back.cuts(p));
        }
    }
}
