//! Element-wise equality of sharded answers against the single-index
//! baseline, across K ∈ {1, 2, 4, 8} (K = 1 degenerates to the existing
//! single-index path), plus snapshot round-trips.
//!
//! kNN/CNN comparisons filter query nodes whose k-th distance is tied
//! (independent Dijkstra ground truth): at a tied cut both sides return a
//! correct-but-possibly-different tied object, exactly as in the service
//! equivalence suite.

use dsi_graph::generate::{random_planar, PlanarConfig};
use dsi_graph::{sssp, Dist, NodeId, ObjectSet, RoadNetwork};
use dsi_partition::{read_partitioned, write_partitioned, PartitionedIndex, ShardedSessions};
use dsi_signature::query::join::self_epsilon_join;
use dsi_signature::{EntryDecodeMode, KnnType, SignatureConfig, SignatureIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;

const KS: [usize; 4] = [1, 2, 4, 8];
const POOL_PAGES: usize = 4;

fn fixture(nodes: usize, seed: u64) -> (RoadNetwork, ObjectSet) {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = random_planar(
        &PlanarConfig {
            num_nodes: nodes,
            ..Default::default()
        },
        &mut rng,
    );
    let objects = ObjectSet::uniform(&net, 0.06, &mut rng);
    (net, objects)
}

/// Query nodes spread over the network.
fn query_nodes(net: &RoadNetwork) -> Vec<NodeId> {
    net.nodes().step_by(net.num_nodes() / 40 + 1).collect()
}

/// True when the k-th nearest distance from `q` is not tied with the
/// (k+1)-th — the only case where the result *set* is unique.
fn knn_cut_tie_free(net: &RoadNetwork, objects: &ObjectSet, q: NodeId, k: usize) -> bool {
    let tree = sssp(net, q);
    let mut dists: Vec<Dist> = objects.iter().map(|(_, h)| tree.dist[h.index()]).collect();
    dists.sort_unstable();
    k >= dists.len() || dists[k - 1] != dists[k]
}

/// Representative range radii for the fixture's weight scale.
fn radii(net: &RoadNetwork, objects: &ObjectSet) -> Vec<Dist> {
    // Anchor on a real distance so small and large ranges both match
    // non-trivial object subsets.
    let tree = sssp(net, NodeId(0));
    let mut dists: Vec<Dist> = objects.iter().map(|(_, h)| tree.dist[h.index()]).collect();
    dists.sort_unstable();
    let mid = dists[dists.len() / 2];
    vec![mid / 4, mid, mid.saturating_mul(2)]
}

#[test]
fn sharded_answers_match_the_single_index_for_every_k() {
    let (net, objects) = fixture(400, 71);
    let config = SignatureConfig::default();
    let single = SignatureIndex::build(&net, &objects, &config);
    let mut base = single.session(&net);
    let queries = query_nodes(&net);
    let eps_list = radii(&net, &objects);

    for k_parts in KS {
        let pidx = PartitionedIndex::build(&net, &objects, &config, k_parts);
        assert_eq!(pidx.num_objects(), objects.len());
        if k_parts == 1 {
            assert_eq!(pidx.num_parts(), 1);
            assert_eq!(pidx.num_boundary(), 0, "K=1 must have no boundary");
        }
        let mut sharded = ShardedSessions::new(&pidx, POOL_PAGES);

        for &q in &queries {
            for &eps in &eps_list {
                assert_eq!(
                    sharded.range(q, eps),
                    base.range(q, eps),
                    "range(q={q}, eps={eps}) diverged at K={k_parts}"
                );
                assert_eq!(
                    sharded.aggregate(q, eps),
                    base.aggregate(q, eps),
                    "aggregate(q={q}, eps={eps}) diverged at K={k_parts}"
                );
            }
            for k in [1usize, 3, 8] {
                if !knn_cut_tie_free(&net, &objects, q, k) {
                    continue;
                }
                assert_eq!(
                    sharded.knn(q, k),
                    base.knn(q, k, KnnType::Type1),
                    "knn(q={q}, k={k}) diverged at K={k_parts}"
                );
            }
        }
        let ops = sharded.op_stats();
        assert!(
            ops.label_lookups > 0 || k_parts == 1,
            "K={k_parts} never glued through the boundary labels"
        );
        assert_eq!(
            ops.frontier_hops, 0,
            "K={k_parts} ran a frontier Dijkstra despite label glue"
        );
    }
}

#[test]
fn sharded_join_matches_the_single_index_for_every_k() {
    let (net, objects) = fixture(300, 72);
    let config = SignatureConfig::default();
    let single = SignatureIndex::build(&net, &objects, &config);
    let mut base = single.session(&net);
    for &eps in &radii(&net, &objects) {
        let mut want = self_epsilon_join(&mut base, eps);
        want.sort_unstable();
        for k_parts in KS {
            let pidx = PartitionedIndex::build(&net, &objects, &config, k_parts);
            let mut sharded = ShardedSessions::new(&pidx, POOL_PAGES);
            assert_eq!(
                sharded.join(eps),
                want,
                "join(eps={eps}) diverged at K={k_parts}"
            );
        }
    }
}

#[test]
fn sharded_continuous_knn_matches_the_single_index() {
    let (net, objects) = fixture(300, 73);
    let config = SignatureConfig::default();
    let single = SignatureIndex::build(&net, &objects, &config);
    let mut base = single.session(&net);

    // A walk of adjacent nodes (the CNN operator requires a real path),
    // avoiding immediate backtracking so it covers ground.
    let walk = |start: NodeId, len: usize| -> Vec<NodeId> {
        let mut path = vec![start];
        let mut prev = start;
        while path.len() < len {
            let cur = *path.last().unwrap();
            let Some((_, next, _)) = net
                .neighbors(cur)
                .find(|&(_, v, _)| v != prev)
                .or_else(|| net.neighbors(cur).next())
            else {
                break;
            };
            prev = cur;
            path.push(next);
        }
        path
    };

    for k in [1usize, 3] {
        // Tie-free paths only: at a tied cut both sides may keep a
        // different tied object, which is correct but not comparable.
        let path = (0..net.num_nodes())
            .step_by(13)
            .map(|s| walk(NodeId(s as u32), 40))
            .find(|p| p.len() == 40 && p.iter().all(|&q| knn_cut_tie_free(&net, &objects, q, k)))
            .expect("no tie-free walk found — fixture too degenerate");
        let want = base.continuous_knn(&path, k);

        for k_parts in KS {
            let pidx = PartitionedIndex::build(&net, &objects, &config, k_parts);
            let mut sharded = ShardedSessions::new(&pidx, POOL_PAGES);
            assert_eq!(
                sharded.continuous_knn(&path, k),
                want,
                "cnn(k={k}) diverged at K={k_parts}"
            );
        }
    }
}

#[test]
fn snapshot_round_trip_preserves_answers_and_io_accounting() {
    let (net, objects) = fixture(300, 74);
    let config = SignatureConfig::default();
    let pidx = PartitionedIndex::build(&net, &objects, &config, 4);
    let mut buf = Vec::new();
    write_partitioned(&pidx, &mut buf).unwrap();
    let back = read_partitioned(&buf[..], &net, &objects).unwrap();

    assert_eq!(back.num_parts(), pidx.num_parts());
    assert_eq!(back.num_boundary(), pidx.num_boundary());
    assert_eq!(back.total_pages(), pidx.total_pages());

    let mut a = ShardedSessions::new(&pidx, POOL_PAGES);
    let mut b = ShardedSessions::new(&back, POOL_PAGES);
    let eps = radii(&net, &objects)[1];
    for q in query_nodes(&net) {
        assert_eq!(a.range(q, eps), b.range(q, eps), "range(q={q}) diverged");
        assert_eq!(a.knn(q, 3), b.knn(q, 3), "knn(q={q}) diverged");
    }
    assert_eq!(a.io_stats(), b.io_stats(), "I/O accounting diverged");
}

#[test]
fn loaded_snapshot_serves_entry_granular_decode() {
    // The per-region snapshots are v3 files with skip directories, so
    // entry-granular decode must answer identically after a round trip.
    let (net, objects) = fixture(300, 75);
    let pidx = PartitionedIndex::build(&net, &objects, &SignatureConfig::default(), 4);
    let mut buf = Vec::new();
    write_partitioned(&pidx, &mut buf).unwrap();
    let back = read_partitioned(&buf[..], &net, &objects).unwrap();

    let eps = radii(&net, &objects)[1];
    for mode in [
        EntryDecodeMode::Off,
        EntryDecodeMode::On,
        EntryDecodeMode::Auto,
    ] {
        let mut a = ShardedSessions::new(&pidx, POOL_PAGES);
        let mut b = ShardedSessions::new(&back, POOL_PAGES);
        a.set_entry_decode(mode);
        b.set_entry_decode(mode);
        for q in query_nodes(&net).into_iter().take(12) {
            assert_eq!(a.range(q, eps), b.range(q, eps), "{mode:?} q={q}");
            assert_eq!(a.knn(q, 4), b.knn(q, 4), "{mode:?} q={q}");
        }
    }
}

#[test]
fn damaged_snapshots_are_rejected() {
    let (net, objects) = fixture(200, 76);
    let pidx = PartitionedIndex::build(&net, &objects, &SignatureConfig::default(), 3);
    let mut buf = Vec::new();
    write_partitioned(&pidx, &mut buf).unwrap();

    let mut truncated = buf.clone();
    truncated.truncate(buf.len() / 2);
    assert!(read_partitioned(&truncated[..], &net, &objects).is_err());

    for byte in [4usize, 16, buf.len() / 2, buf.len() - 8] {
        let mut bad = buf.clone();
        bad[byte] ^= 0x40;
        assert!(
            read_partitioned(&bad[..], &net, &objects).is_err(),
            "flip at byte {byte} went undetected"
        );
    }

    // Wrong dataset: same network, shifted hosts.
    let hosts: Vec<NodeId> = objects
        .iter()
        .map(|(_, h)| NodeId((h.0 + 1) % net.num_nodes() as u32))
        .collect();
    let other = ObjectSet::from_nodes(&net, hosts);
    assert!(read_partitioned(&buf[..], &net, &other).is_err());
}
