//! Network partitioner: K connectivity-clustered regions grown from
//! CCAM-spread BFS seeds.
//!
//! The partitioner reuses the storage layer's region-growing primitive
//! ([`dsi_storage::grow_region`], the same BFS packing loop behind
//! [`dsi_storage::ccam_order`]): K seeds are taken at equal strides through
//! the CCAM order — connectivity-distant by construction — and grown
//! round-robin in small budgeted chunks over a shared `seen` map. A node
//! belongs to whichever region enqueued it first, so every region is
//! connected in the induced subgraph and the rotation keeps region sizes
//! balanced. Cut edges are minimized heuristically the same way CCAM
//! minimizes page-crossing edges: BFS growth keeps each region a compact
//! graph neighbourhood, so only the meeting fronts contribute cuts.

use dsi_graph::{Dist, NodeId, RoadNetwork, INFINITY};
use dsi_storage::grow_region;
use std::collections::VecDeque;

/// One edge crossing a region boundary, recorded from the side of `local`:
/// the partition owning `local` lists the edge in its cut set, and the
/// partition owning `remote` lists the mirror edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CutEdge {
    /// Endpoint inside the recording region (global node id).
    pub local: NodeId,
    /// Endpoint in the other region (global node id).
    pub remote: NodeId,
    /// Edge weight.
    pub weight: Dist,
}

/// A disjoint cover of the network's nodes by K connected regions, with
/// each region's boundary nodes and cut edges recorded.
///
/// Invariants (pinned by the proptests in `tests/partitioning.rs`):
/// every node lands in exactly one region; every cut edge is recorded on
/// both sides; boundary lists contain exactly the nodes incident to a cut
/// edge of their region, sorted ascending; region node lists are sorted
/// ascending (a region-local node id is the rank in this list).
#[derive(Clone, Debug)]
pub struct Partitioning {
    num_parts: usize,
    part_of: Vec<u32>,
    nodes: Vec<Vec<NodeId>>,
    boundary: Vec<Vec<NodeId>>,
    cuts: Vec<Vec<CutEdge>>,
}

impl Partitioning {
    /// Partition `net` into (at most) `k` regions. `k` is clamped to
    /// `1..=num_nodes`; `k = 1` yields the trivial partitioning with no
    /// boundary. On a disconnected network, each extra component is
    /// attached wholesale to the currently smallest region.
    pub fn new(net: &RoadNetwork, k: usize) -> Self {
        let n = net.num_nodes();
        assert!(n > 0, "cannot partition an empty network");
        let k = k.clamp(1, n);

        let order = dsi_storage::ccam_order(net);
        let mut seen = vec![false; n];
        let mut queues: Vec<VecDeque<NodeId>> = Vec::with_capacity(k);
        let mut regions: Vec<Vec<usize>> = vec![Vec::new(); k];
        for i in 0..k {
            // Stride positions are strictly increasing for k ≤ n, so the
            // seeds are distinct.
            let seed = NodeId(order[i * n / k] as u32);
            seen[seed.index()] = true;
            queues.push(VecDeque::from([seed]));
        }

        // Round-robin growth in small chunks: a region whose queue runs
        // dry (walled in by its neighbours) simply stops claiming nodes
        // and the others absorb the remainder.
        const CHUNK: usize = 64;
        loop {
            let mut grew = 0;
            for (p, queue) in queues.iter_mut().enumerate() {
                grew += grow_region(net, queue, &mut seen, CHUNK, &mut regions[p]);
            }
            if grew == 0 {
                break;
            }
        }
        // Disconnected leftovers: whole components join the smallest
        // region (they contribute no cut edges either way).
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let p = (0..k).min_by_key(|&p| regions[p].len()).expect("k >= 1");
            seen[start] = true;
            let mut queue = VecDeque::from([NodeId(start as u32)]);
            grow_region(net, &mut queue, &mut seen, usize::MAX, &mut regions[p]);
        }

        let mut part_of = vec![0u32; n];
        let nodes: Vec<Vec<NodeId>> = regions
            .into_iter()
            .map(|mut r| {
                r.sort_unstable();
                r.into_iter().map(|i| NodeId(i as u32)).collect()
            })
            .collect();
        for (p, ns) in nodes.iter().enumerate() {
            for &v in ns {
                part_of[v.index()] = p as u32;
            }
        }
        Self::assemble(net, k, part_of, nodes)
    }

    /// Rebuild a partitioning from a stored region assignment (the persist
    /// path): boundary nodes and cut edges are re-derived from the network.
    pub fn from_part_of(net: &RoadNetwork, num_parts: usize, part_of: Vec<u32>) -> Self {
        assert_eq!(part_of.len(), net.num_nodes());
        let mut nodes: Vec<Vec<NodeId>> = vec![Vec::new(); num_parts];
        for (i, &p) in part_of.iter().enumerate() {
            assert!((p as usize) < num_parts, "region id out of range");
            nodes[p as usize].push(NodeId(i as u32));
        }
        Self::assemble(net, num_parts, part_of, nodes)
    }

    fn assemble(
        net: &RoadNetwork,
        num_parts: usize,
        part_of: Vec<u32>,
        nodes: Vec<Vec<NodeId>>,
    ) -> Self {
        let mut boundary = vec![Vec::new(); num_parts];
        let mut cuts = vec![Vec::new(); num_parts];
        for u in net.nodes() {
            let pu = part_of[u.index()];
            let mut is_boundary = false;
            for (_, v, w) in net.neighbors(u) {
                if w == INFINITY {
                    continue;
                }
                if part_of[v.index()] != pu {
                    is_boundary = true;
                    cuts[pu as usize].push(CutEdge {
                        local: u,
                        remote: v,
                        weight: w,
                    });
                }
            }
            if is_boundary {
                boundary[pu as usize].push(u);
            }
        }
        Partitioning {
            num_parts,
            part_of,
            nodes,
            boundary,
            cuts,
        }
    }

    /// Number of regions K.
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Region owning node `n`.
    pub fn part_of(&self, n: NodeId) -> usize {
        self.part_of[n.index()] as usize
    }

    /// The raw node → region assignment (for persistence).
    pub fn assignment(&self) -> &[u32] {
        &self.part_of
    }

    /// Global node ids of region `p`, sorted ascending. A node's
    /// region-local id is its rank in this list.
    pub fn nodes(&self, p: usize) -> &[NodeId] {
        &self.nodes[p]
    }

    /// Boundary nodes of region `p` (nodes with a cut edge), sorted.
    pub fn boundary(&self, p: usize) -> &[NodeId] {
        &self.boundary[p]
    }

    /// Cut edges recorded by region `p` (one entry per directed crossing
    /// out of `p`; the other region records the mirror).
    pub fn cuts(&self, p: usize) -> &[CutEdge] {
        &self.cuts[p]
    }

    /// Number of undirected cut edges in the whole partitioning.
    pub fn num_cut_edges(&self) -> usize {
        let directed: usize = self.cuts.iter().map(Vec::len).sum();
        directed / 2
    }
}
