//! Per-partition index construction and the boundary overlay.
//!
//! Each region gets its own [`SignatureIndex`] over the induced subgraph,
//! built with the region's **real** objects plus one *boundary
//! pseudo-object* per boundary node — so the ordinary signature machinery
//! (with its page-access accounting) answers "distance from a query node to
//! each boundary crossing" exactly like any other object distance.
//!
//! Cross-partition exactness rests on two decompositions:
//!
//! * **first exit** — for a query `q` in region `P` and any target `t`,
//!   `d_G(q,t) = min(d_P(q,t), min_{b ∈ ∂P} d_P(q,b) + d_G(b,t))`: the
//!   first boundary node on a true shortest path has an all-interior
//!   prefix, so its region-local distance is already exact.
//! * **last entry** — `d_G(b, host(o))` for a boundary node `b` and object
//!   `o` in region `Q` decomposes over the *last* boundary node `b' ∈ ∂Q`
//!   through which the path enters `Q`: `d_G(b,b') + d_Q(b', host(o))`.
//!
//! The build therefore precomputes, per region, the exact in-region
//! distance rows from every boundary node to every real-object host and to
//! every other boundary node of the same region — read for free off the
//! same SSSPs that fill the region's signatures
//! ([`SignatureIndex::build_serial`]'s capture hook) — and assembles the
//! **boundary overlay**: a graph on all boundary nodes whose edges are the
//! cut edges (original weights) plus, per region, the complete in-region
//! boundary-to-boundary distance rows. Shortest paths in the overlay equal
//! full-graph distances between boundary nodes, which is exactly the
//! remote-hop glue the router's frontier expansion needs.

use crate::partitioner::Partitioning;
use dsi_graph::{Dist, NodeId, ObjectId, ObjectSet, Point, RoadNetwork, INFINITY};
use dsi_hierarchy::{ChConfig, ContractionHierarchy, HubLabels};

use dsi_signature::{SignatureBuildWorkspace, SignatureConfig, SignatureIndex};
use std::cmp::Reverse;

/// One region's built artifacts: the induced subgraph (region-local node
/// ids), its object set (real hosts first-come, boundary pseudo-objects
/// merged in), and its signature index.
pub struct Region {
    /// Induced subgraph of the region (local node ids = rank in the
    /// region's sorted global node list).
    pub net: RoadNetwork,
    /// Region-local objects: every distinct host node that carries a real
    /// object, a boundary pseudo-object, or both.
    pub objects: ObjectSet,
    /// The region's own signature index over `net` × `objects`.
    pub index: SignatureIndex,
    /// `(local object, global object)` for real objects, ascending local id.
    pub(crate) real_objs: Vec<(ObjectId, ObjectId)>,
    /// `(local object, global boundary index)` for boundary pseudo-objects,
    /// ascending local id (= ascending global boundary index).
    pub(crate) boundary_objs: Vec<(ObjectId, u32)>,
}

impl Region {
    /// Global ids of the real objects hosted in this region, by local rank.
    pub fn real_objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.real_objs.iter().map(|&(_, g)| g)
    }

    /// Number of boundary pseudo-objects.
    pub fn num_boundary(&self) -> usize {
        self.boundary_objs.len()
    }
}

/// The partitioned counterpart of a single [`SignatureIndex`]: K region
/// indexes on disjoint page ranges plus the boundary overlay and the
/// per-region glue rows the cross-partition router consumes.
pub struct PartitionedIndex {
    pub(crate) partitioning: Partitioning,
    pub(crate) parts: Vec<Region>,
    /// Global node id → region-local node id.
    pub(crate) local_node: Vec<u32>,
    /// Global boundary index → global node id (regions concatenated).
    pub(crate) all_boundary: Vec<NodeId>,
    /// Region → first global boundary index (length K+1).
    pub(crate) boundary_base: Vec<usize>,
    /// Boundary overlay adjacency over global boundary indexes.
    pub(crate) overlay: Vec<Vec<(u32, Dist)>>,
    /// `[region][boundary rank][real rank]` = exact in-region distance from
    /// that boundary node to that real object's host.
    pub(crate) obj_rows: Vec<Vec<Vec<Dist>>>,
    /// Hub labels over the boundary overlay: the router's cross-partition
    /// glue. A boundary-to-boundary distance is one sorted label merge
    /// instead of a frontier Dijkstra over the overlay.
    pub(crate) glue: HubLabels,
    /// The glue labels inverted hub-first (see [`GlueBuckets`]): the
    /// router's multi-source expansion only touches buckets of hubs its
    /// seeds reach, instead of re-reading every boundary node's label.
    pub(crate) glue_buckets: GlueBuckets,
    pub(crate) num_objects: usize,
}

/// Inverted glue labels: for each hub, every boundary node whose label
/// contains it, rows ascending by distance so a bounded scan stops at the
/// first row past its budget. A pure function of the labels — like them,
/// re-derived rather than persisted.
pub(crate) struct GlueBuckets {
    /// Hub → first row (length `num_boundary + 1`).
    index: Vec<u32>,
    /// `(boundary index, dist)` rows grouped by hub, ascending `(dist, b)`.
    rows: Vec<(u32, Dist)>,
}

impl GlueBuckets {
    pub(crate) fn invert(glue: &HubLabels) -> GlueBuckets {
        let nb = glue.num_nodes();
        let mut buckets: Vec<Vec<(u32, Dist)>> = vec![Vec::new(); nb];
        for b in 0..nb {
            let (hs, ds) = glue.label_of(NodeId(b as u32));
            for (h, &d) in hs.iter().zip(ds) {
                buckets[h.index()].push((b as u32, d));
            }
        }
        let mut index = Vec::with_capacity(nb + 1);
        index.push(0u32);
        let mut rows = Vec::with_capacity(glue.num_entries());
        for bucket in &mut buckets {
            bucket.sort_unstable_by_key(|&(b, d)| (d, b));
            rows.extend_from_slice(bucket);
            index.push(rows.len() as u32);
        }
        GlueBuckets { index, rows }
    }

    /// The `(boundary index, dist)` rows of hub `h`, ascending by dist.
    pub(crate) fn rows_of(&self, h: usize) -> &[(u32, Dist)] {
        &self.rows[self.index[h] as usize..self.index[h + 1] as usize]
    }

    /// Number of rows in hub `h`'s bucket.
    pub(crate) fn len_of(&self, h: usize) -> usize {
        (self.index[h + 1] - self.index[h]) as usize
    }

    /// Total rows across all buckets (= total label entries).
    pub(crate) fn total_rows(&self) -> usize {
        self.rows.len()
    }
}

/// Per-region artifacts a build worker hands back.
struct BuiltPart {
    region: Region,
    /// Captured exact distance rows, one per boundary pseudo-object (region
    /// boundary order), each `region.net.num_nodes()` long.
    rows: Vec<Vec<Dist>>,
}

impl PartitionedIndex {
    /// Partition `net` into `k` regions and build every region index, in
    /// parallel with `std::thread::scope` (one build worker per region up
    /// to the available parallelism, each reusing a single
    /// [`SignatureBuildWorkspace`] across all regions it constructs).
    pub fn build(
        net: &RoadNetwork,
        objects: &ObjectSet,
        config: &SignatureConfig,
        k: usize,
    ) -> Self {
        Self::build_from(net, objects, config, Partitioning::new(net, k))
    }

    /// [`build`](Self::build) over an existing partitioning.
    pub fn build_from(
        net: &RoadNetwork,
        objects: &ObjectSet,
        config: &SignatureConfig,
        partitioning: Partitioning,
    ) -> Self {
        assert!(!objects.is_empty(), "dataset must be non-empty");
        let k = partitioning.num_parts();
        let shape = Shape::of(net, &partitioning);

        let num_workers = if k == 1 {
            1
        } else {
            std::thread::available_parallelism()
                .map_or(1, |p| p.get())
                .min(k)
                .min(8)
        };
        let mut slots: Vec<Option<BuiltPart>> = (0..k).map(|_| None).collect();
        if num_workers <= 1 {
            let mut ws = SignatureBuildWorkspace::default();
            for (p, slot) in slots.iter_mut().enumerate() {
                *slot = Some(build_part(
                    net,
                    objects,
                    config,
                    &partitioning,
                    &shape,
                    p,
                    &mut ws,
                ));
            }
        } else {
            let next = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|s| {
                let (tx, rx) = std::sync::mpsc::channel::<(usize, BuiltPart)>();
                for _ in 0..num_workers {
                    let tx = tx.clone();
                    let next = &next;
                    let (partitioning, shape) = (&partitioning, &shape);
                    s.spawn(move || {
                        // One workspace per worker for its whole run, not
                        // one per region.
                        let mut ws = SignatureBuildWorkspace::default();
                        loop {
                            let p = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if p >= k {
                                break;
                            }
                            let built =
                                build_part(net, objects, config, partitioning, shape, p, &mut ws);
                            tx.send((p, built)).expect("collector alive");
                        }
                    });
                }
                drop(tx);
                for (p, built) in rx {
                    slots[p] = Some(built);
                }
            });
        }

        let mut parts = Vec::with_capacity(k);
        let mut all_rows = Vec::with_capacity(k);
        for slot in slots {
            let built = slot.expect("all regions built");
            parts.push(built.region);
            all_rows.push(built.rows);
        }

        // Partition-aware packing: rebase each region's store onto a
        // disjoint range of the shared page-id space, in region order.
        let mut base = 0;
        for part in &mut parts {
            part.index.rebase_store(base);
            base = part.index.store().end_page();
        }

        Self::assemble(objects, partitioning, shape, parts, &all_rows)
    }

    pub(crate) fn assemble(
        objects: &ObjectSet,
        partitioning: Partitioning,
        shape: Shape,
        parts: Vec<Region>,
        all_rows: &[Vec<Vec<Dist>>],
    ) -> Self {
        let k = partitioning.num_parts();
        let num_boundary = shape.all_boundary.len();

        // Overlay: per-region complete boundary-to-boundary rows (exact
        // in-region distances) + every cut edge at its original weight.
        let mut overlay: Vec<Vec<(u32, Dist)>> = vec![Vec::new(); num_boundary];
        let mut obj_rows: Vec<Vec<Vec<Dist>>> = Vec::with_capacity(k);
        for p in 0..k {
            let bl = partitioning.boundary(p);
            let b0 = shape.boundary_base[p];
            let rows = &all_rows[p];
            debug_assert_eq!(rows.len(), bl.len());
            for (i, row) in rows.iter().enumerate() {
                for (j, &bj) in bl.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let d = row[shape.local_node[bj.index()] as usize];
                    if d != INFINITY {
                        overlay[b0 + i].push(((b0 + j) as u32, d));
                    }
                }
            }
            for cut in partitioning.cuts(p) {
                let from = shape.bidx_of[cut.local.index()];
                let to = shape.bidx_of[cut.remote.index()];
                debug_assert!(from != u32::MAX && to != u32::MAX);
                overlay[from as usize].push((to, cut.weight));
            }
            obj_rows.push(
                rows.iter()
                    .map(|row| {
                        parts[p]
                            .real_objs
                            .iter()
                            .map(|&(lo, _)| row[parts[p].objects.node_of(lo).index()])
                            .collect()
                    })
                    .collect(),
            );
        }

        let placed: usize = parts.iter().map(|r| r.real_objs.len()).sum();
        assert_eq!(placed, objects.len(), "every object in exactly one region");

        let glue = build_glue(&overlay);
        let glue_buckets = GlueBuckets::invert(&glue);

        PartitionedIndex {
            partitioning,
            parts,
            local_node: shape.local_node,
            all_boundary: shape.all_boundary,
            boundary_base: shape.boundary_base,
            overlay,
            obj_rows,
            glue,
            glue_buckets,
            num_objects: objects.len(),
        }
    }

    /// Number of regions K.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// Region owning global node `n`.
    pub fn part_of(&self, n: NodeId) -> usize {
        self.partitioning.part_of(n)
    }

    /// Region `p`'s built artifacts.
    pub fn part(&self, p: usize) -> &Region {
        &self.parts[p]
    }

    /// The underlying partitioning.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Total boundary nodes across all regions.
    pub fn num_boundary(&self) -> usize {
        self.all_boundary.len()
    }

    /// Number of global objects.
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Total pages across all region stores (disjoint ranges).
    pub fn total_pages(&self) -> u32 {
        self.parts.last().map_or(0, |r| r.index.store().end_page())
    }

    /// Region-local id of global node `n`.
    pub fn local_node(&self, n: NodeId) -> NodeId {
        NodeId(self.local_node[n.index()])
    }

    /// The boundary-overlay hub labels the router glues with.
    pub fn glue_labels(&self) -> &HubLabels {
        &self.glue
    }
}

/// Build the router's glue labels: pruned-landmark labels over the
/// boundary overlay (node ids = global boundary indexes). Shortest paths
/// in the overlay equal full-graph distances between boundary nodes, so
/// a label merge answers `d_G(b, b')` exactly. The overlay's per-region
/// cliques give nodes degrees in the hundreds — far past the road
/// network's slot width, and dense enough that contraction drowns in
/// witness searches — so the labels are built by pruned Dijkstras
/// ([`HubLabels::build_pruned`]), which density only costs edge scans.
/// Roots are ordered by descending degree (most-connected boundary nodes
/// make the best hubs), ties by id. Deterministic — derived from the
/// overlay alone, so build and snapshot load produce identical labels.
pub(crate) fn build_glue(overlay: &[Vec<(u32, Dist)>]) -> HubLabels {
    let adj: Vec<Vec<(NodeId, Dist)>> = overlay
        .iter()
        .map(|a| a.iter().map(|&(to, w)| (NodeId(to), w)).collect())
        .collect();
    let mut order: Vec<NodeId> = (0..adj.len() as u32).map(NodeId).collect();
    order.sort_unstable_by_key(|&v| (Reverse(adj[v.index()].len()), v.0));
    HubLabels::build_pruned(&adj, &order)
}

/// Shared read-only lookup tables every build worker needs.
pub(crate) struct Shape {
    /// Global node → region-local node id.
    pub(crate) local_node: Vec<u32>,
    /// Global node → global boundary index (`u32::MAX` if interior).
    pub(crate) bidx_of: Vec<u32>,
    pub(crate) all_boundary: Vec<NodeId>,
    pub(crate) boundary_base: Vec<usize>,
}

impl Shape {
    pub(crate) fn of(net: &RoadNetwork, partitioning: &Partitioning) -> Shape {
        let n = net.num_nodes();
        let k = partitioning.num_parts();
        let mut all_boundary = Vec::new();
        let mut boundary_base = Vec::with_capacity(k + 1);
        for p in 0..k {
            boundary_base.push(all_boundary.len());
            all_boundary.extend_from_slice(partitioning.boundary(p));
        }
        boundary_base.push(all_boundary.len());
        let mut bidx_of = vec![u32::MAX; n];
        for (i, &b) in all_boundary.iter().enumerate() {
            bidx_of[b.index()] = i as u32;
        }
        let mut local_node = vec![u32::MAX; n];
        for p in 0..k {
            for (li, &g) in partitioning.nodes(p).iter().enumerate() {
                local_node[g.index()] = li as u32;
            }
        }
        Shape {
            local_node,
            bidx_of,
            all_boundary,
            boundary_base,
        }
    }
}

/// The deterministic, index-free part of a region: its induced subgraph and
/// merged object roster. Re-derived identically at build time and at
/// snapshot load time.
pub(crate) struct RegionShape {
    pub(crate) subnet: RoadNetwork,
    pub(crate) part_objects: ObjectSet,
    pub(crate) real_objs: Vec<(ObjectId, ObjectId)>,
    pub(crate) boundary_objs: Vec<(ObjectId, u32)>,
}

pub(crate) fn region_shape(
    net: &RoadNetwork,
    objects: &ObjectSet,
    partitioning: &Partitioning,
    shape: &Shape,
    p: usize,
) -> RegionShape {
    let globals = partitioning.nodes(p);

    let coords: Vec<Point> = globals.iter().map(|&g| net.coord(g)).collect();
    let adj: Vec<Vec<(NodeId, Dist)>> = globals
        .iter()
        .map(|&g| {
            net.neighbors(g)
                .filter(|&(_, v, w)| w != INFINITY && partitioning.part_of(v) == p)
                .map(|(_, v, w)| (NodeId(shape.local_node[v.index()]), w))
                .collect()
        })
        .collect();
    let subnet = RoadNetwork::from_adjacency(coords, adj);

    let mut hosts = Vec::new();
    let mut real_objs = Vec::new();
    let mut boundary_objs = Vec::new();
    for (li, &g) in globals.iter().enumerate() {
        let real = objects.object_at(g);
        let b = shape.bidx_of[g.index()];
        if real.is_none() && b == u32::MAX {
            continue;
        }
        let lo = ObjectId(hosts.len() as u32);
        hosts.push(NodeId(li as u32));
        if let Some(o) = real {
            real_objs.push((lo, o));
        }
        if b != u32::MAX {
            boundary_objs.push((lo, b));
        }
    }
    let part_objects = ObjectSet::from_nodes(&subnet, hosts);
    // Local ids ascend with global node ids, so boundary pseudo-object order
    // is exactly the region's boundary order (ascending global boundary
    // index).
    debug_assert!(boundary_objs
        .iter()
        .enumerate()
        .all(|(i, &(_, b))| b as usize == shape.boundary_base[p] + i));

    RegionShape {
        subnet,
        part_objects,
        real_objs,
        boundary_objs,
    }
}

/// Build one region: induced subgraph, merged object set (real ∪ boundary
/// pseudos), signature index, and the captured boundary distance rows.
fn build_part(
    net: &RoadNetwork,
    objects: &ObjectSet,
    config: &SignatureConfig,
    partitioning: &Partitioning,
    shape: &Shape,
    p: usize,
    ws: &mut SignatureBuildWorkspace,
) -> BuiltPart {
    let RegionShape {
        subnet,
        part_objects,
        real_objs,
        boundary_objs,
    } = region_shape(net, objects, partitioning, shape, p);
    let n_p = subnet.num_nodes();
    let capture: Vec<ObjectId> = boundary_objs.iter().map(|&(lo, _)| lo).collect();

    let part_cfg = SignatureConfig {
        parallel: false,
        ..config.clone()
    };
    // Same substrate policy as a single-index build, decided per region.
    let ch = config
        .build_distance
        .use_hierarchy(n_p, part_objects.len(), false)
        .then(|| ContractionHierarchy::build(&subnet, &ChConfig::default()));
    let (index, rows) =
        SignatureIndex::build_serial(&subnet, &part_objects, &part_cfg, ch.as_ref(), ws, &capture);

    BuiltPart {
        region: Region {
            net: subnet,
            objects: part_objects,
            index,
            real_objs,
            boundary_objs,
        },
        rows,
    }
}
