//! Binary persistence for a [`PartitionedIndex`].
//!
//! A sharded snapshot is one file: a plaintext `[MAGIC][version]` preamble,
//! then a single CRC-32-framed stream ([`dsi_storage::FrameWriter`])
//! holding the region assignment, the boundary overlay, the per-region
//! glue rows, and finally each region's signature index as a
//! length-prefixed v3 snapshot (the exact byte stream
//! [`dsi_signature::persist::write_index`] produces — skip directories and
//! all, so [`EntryDecodeMode::Auto`](dsi_signature::EntryDecodeMode) keeps
//! working under sharding).
//!
//! Region subgraphs, object rosters, and page layouts are *not* stored:
//! they are re-derived deterministically from the network + assignment at
//! load time, exactly as [`read_index`](dsi_signature::persist::read_index)
//! re-derives the single-index layout. A loaded sharded index is therefore
//! bit-identical in content and I/O accounting to the one that was saved.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use dsi_graph::io::{get_u32, get_u64, put_u32, put_u64, LoadError};
use dsi_graph::{ObjectSet, RoadNetwork, INFINITY};
use dsi_storage::{FrameReader, FrameWriter};

use crate::index::{build_glue, region_shape, GlueBuckets, PartitionedIndex, Region, Shape};
use crate::partitioner::Partitioning;

const MAGIC: &[u8; 4] = b"DSPX";
const VERSION: u32 = 1;

/// Ceiling on any single up-front reservation while decoding (lengths come
/// from disk; a corrupt one must not become a giant allocation).
const MAX_RESERVE: usize = 1 << 16;

fn capped_vec<T>(len: usize) -> Vec<T> {
    Vec::with_capacity(len.min(MAX_RESERVE))
}

fn format_err<T>(msg: impl Into<String>) -> Result<T, LoadError> {
    Err(LoadError::Format(msg.into()))
}

/// Write the sharded snapshot.
pub fn write_partitioned<W: Write>(pidx: &PartitionedIndex, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    put_u32(&mut w, VERSION)?;

    let mut w = FrameWriter::new(w);
    let k = pidx.num_parts();
    let assignment = pidx.partitioning.assignment();
    put_u32(&mut w, k as u32)?;
    put_u64(&mut w, assignment.len() as u64)?;
    for &p in assignment {
        put_u32(&mut w, p)?;
    }

    // Boundary overlay (global boundary indexes; the index → node mapping
    // is re-derived from the assignment).
    put_u64(&mut w, pidx.overlay.len() as u64)?;
    for adj in &pidx.overlay {
        put_u32(&mut w, adj.len() as u32)?;
        for &(to, wt) in adj {
            put_u32(&mut w, to)?;
            put_u32(&mut w, wt)?;
        }
    }

    // Glue rows: per region, boundary × real-object exact distances.
    for rows in &pidx.obj_rows {
        put_u64(&mut w, rows.len() as u64)?;
        let width = rows.first().map_or(0, Vec::len);
        put_u64(&mut w, width as u64)?;
        for row in rows {
            debug_assert_eq!(row.len(), width);
            for &d in row {
                put_u32(&mut w, d)?;
            }
        }
    }

    // Region indexes: each a self-contained v3 signature snapshot,
    // length-prefixed so the reader can hand each one to
    // `dsi_signature::persist::read_index` from an exact-sized buffer.
    for part in &pidx.parts {
        let mut blob = Vec::new();
        dsi_signature::persist::write_index(&part.index, &mut blob)?;
        put_u64(&mut w, blob.len() as u64)?;
        w.write_all(&blob)?;
    }

    w.finish()?.flush()
}

/// Read a sharded snapshot; `net` and `objects` must be the network and
/// dataset it was built on (region subgraphs and page layouts are
/// re-derived from them).
///
/// Like the single-index loader, every failure mode of a damaged file
/// surfaces as a [`LoadError`] — never a panic, never an unverified index.
pub fn read_partitioned<R: Read>(
    r: R,
    net: &RoadNetwork,
    objects: &ObjectSet,
) -> Result<PartitionedIndex, LoadError> {
    let mut r = BufReader::new(r);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return format_err("not a partitioned index file");
    }
    let v = get_u32(&mut r)?;
    if v != VERSION {
        return format_err(format!("unsupported partitioned index version {v}"));
    }

    let mut r = FrameReader::new(r);

    let k = get_u32(&mut r)? as usize;
    if k == 0 {
        return format_err("zero regions");
    }
    let n = get_u64(&mut r)? as usize;
    if n != net.num_nodes() {
        return format_err(format!(
            "assignment covers {n} nodes but network has {}",
            net.num_nodes()
        ));
    }
    let mut part_of = capped_vec(n);
    for _ in 0..n {
        let p = get_u32(&mut r)?;
        if p as usize >= k {
            return format_err("region id out of range");
        }
        part_of.push(p);
    }
    let partitioning = Partitioning::from_part_of(net, k, part_of);
    let shape = Shape::of(net, &partitioning);
    let num_boundary = shape.all_boundary.len();

    let nb = get_u64(&mut r)? as usize;
    if nb != num_boundary {
        return format_err(format!(
            "overlay has {nb} boundary nodes, derived {num_boundary}"
        ));
    }
    let mut overlay = capped_vec(num_boundary);
    for _ in 0..num_boundary {
        let deg = get_u32(&mut r)? as usize;
        let mut adj = capped_vec(deg);
        for _ in 0..deg {
            let to = get_u32(&mut r)?;
            let wt = get_u32(&mut r)?;
            if to as usize >= num_boundary || wt == INFINITY {
                return format_err("invalid overlay edge");
            }
            adj.push((to, wt));
        }
        overlay.push(adj);
    }

    // Region shapes first (pure derivation), then glue rows validated
    // against them, then the index blobs.
    let shapes: Vec<_> = (0..k)
        .map(|p| region_shape(net, objects, &partitioning, &shape, p))
        .collect();

    let mut obj_rows = Vec::with_capacity(k);
    for (p, rs) in shapes.iter().enumerate() {
        let nrows = get_u64(&mut r)? as usize;
        let width = get_u64(&mut r)? as usize;
        if nrows != rs.boundary_objs.len() || (nrows > 0 && width != rs.real_objs.len()) {
            return format_err(format!("glue rows of region {p} have the wrong shape"));
        }
        let mut rows = capped_vec(nrows);
        for _ in 0..nrows {
            let mut row = capped_vec(width);
            for _ in 0..width {
                row.push(get_u32(&mut r)?);
            }
            rows.push(row);
        }
        obj_rows.push(rows);
    }

    let mut parts = Vec::with_capacity(k);
    let mut base = 0;
    for (p, rs) in shapes.into_iter().enumerate() {
        let len = get_u64(&mut r)? as usize;
        let mut blob = capped_vec(len);
        let copied = std::io::copy(&mut (&mut r).take(len as u64), &mut blob)?;
        if copied as usize != len {
            return format_err(format!("region {p} index blob truncated"));
        }
        let mut index = dsi_signature::persist::read_index(&blob[..], &rs.subnet)?;
        if index.num_objects() != rs.part_objects.len()
            || rs
                .part_objects
                .iter()
                .any(|(o, host)| index.host(o) != host)
        {
            return format_err(format!("region {p} index does not match its roster"));
        }
        index.rebase_store(base);
        base = index.store().end_page();
        parts.push(Region {
            net: rs.subnet,
            objects: rs.part_objects,
            index,
            real_objs: rs.real_objs,
            boundary_objs: rs.boundary_objs,
        });
    }

    let placed: usize = parts.iter().map(|r| r.real_objs.len()).sum();
    if placed != objects.len() {
        return format_err("dataset does not match the stored assignment");
    }

    // The glue labels are a pure function of the (validated) overlay, so
    // they are re-derived rather than stored — a loaded index glues with
    // exactly the labels the saved one did.
    let glue = build_glue(&overlay);
    let glue_buckets = GlueBuckets::invert(&glue);

    Ok(PartitionedIndex {
        partitioning,
        parts,
        local_node: shape.local_node,
        all_boundary: shape.all_boundary,
        boundary_base: shape.boundary_base,
        overlay,
        obj_rows,
        glue,
        glue_buckets,
        num_objects: objects.len(),
    })
}

/// Save the sharded snapshot to `path`.
pub fn save_partitioned(pidx: &PartitionedIndex, path: impl AsRef<Path>) -> io::Result<()> {
    write_partitioned(pidx, std::fs::File::create(path)?)
}

/// Load a sharded snapshot from `path`, validated against `net`/`objects`.
pub fn load_partitioned(
    path: impl AsRef<Path>,
    net: &RoadNetwork,
    objects: &ObjectSet,
) -> Result<PartitionedIndex, LoadError> {
    read_partitioned(std::fs::File::open(path)?, net, objects)
}
