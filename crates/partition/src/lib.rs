//! Horizontal sharding for the distance signature index.
//!
//! The paper's index (Hu, Lee & Lee, VLDB 2006) is a single monolithic
//! structure: one signature per node covering every object, built from one
//! SSSP per object over the whole network. This crate splits that into K
//! **partitions** — connectivity-clustered regions cut from the network —
//! each carrying its own full signature index over its induced subgraph,
//! built independently (and therefore in parallel) on its own page range.
//!
//! Three pieces:
//!
//! * [`Partitioning`] — K connected regions grown round-robin from
//!   CCAM-spread BFS seeds, with boundary nodes and cut edges recorded on
//!   both sides ([`partitioner`]).
//! * [`PartitionedIndex`] — per-region signature indexes over real objects
//!   *plus boundary pseudo-objects*, the boundary overlay graph, and the
//!   boundary→object glue rows captured for free from the build SSSPs
//!   ([`index`]).
//! * the **shard router** ([`router`]) — region-local operators plus
//!   hub-label glue over the boundary overlay (sorted label merges instead
//!   of a frontier Dijkstra) that makes every answer element-wise identical
//!   to the single-index baseline; [`ShardedSessions`] is its standalone
//!   session-pool face, `dsi-service` embeds the same operators in its
//!   lock-striped engine.
//!
//! Snapshots ([`persist`]) store the assignment, overlay, glue rows, and
//! each region's v3 signature snapshot in one checksummed file.

pub mod index;
pub mod partitioner;
pub mod persist;
pub mod router;

pub use index::{PartitionedIndex, Region};
pub use partitioner::{CutEdge, Partitioning};
pub use persist::{load_partitioned, read_partitioned, save_partitioned, write_partitioned};
pub use router::ShardedSessions;
