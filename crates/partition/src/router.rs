//! Cross-partition query routing: region-local operators + hub-label glue
//! over the boundary overlay.
//!
//! Every query runs the *local* region's signature operator first (range
//! candidates, exact retrievals — all charged to the caller's session, IO
//! accounting included), then resolves the **boundary labels**: the exact
//! region-local distances to the region's boundary pseudo-objects seed a
//! virtual source whose distance to every boundary node `b` of every
//! region is answered by the overlay's hub labels (see `index.rs`) — the
//! seeds' labels fold into one hub→distance map, then one pass over each
//! boundary node's label reads off the exact full-graph distance
//! `d_G(q, b)`. No overlay traversal runs at query time. Remote (and
//! locally-detouring) object distances then close via the precomputed glue
//! rows:
//! `d_G(q, o) = min(d_local, min_{b' ∈ ∂region(o)} label(b') + row(b', o))`.
//!
//! Each label folded or read is one **label lookup** and every `(hub,
//! dist)` entry it advances over is counted, in
//! [`OpStats::label_lookups`](dsi_signature::OpStats) /
//! [`OpStats::label_entries_scanned`](dsi_signature::OpStats) on the
//! session (the frontier Dijkstra this replaces charged
//! `OpStats::frontier_hops`, which the router no longer touches).
//!
//! Bounded queries (range, aggregate) only seed the virtual source with
//! boundary pseudo-objects the local range operator certified within `ε` —
//! any qualifying remote path must leave through one of those — and prune
//! whole regions whose nearest boundary label exceeds `ε`.

use crate::index::PartitionedIndex;
use dsi_graph::{Dist, NodeId, ObjectId, INFINITY};
use dsi_signature::query::aggregate::RangeAggregate;
use dsi_signature::{merge_segments, CnnSegment, KnnResult, OpResult, Session, SessionState};

impl PartitionedIndex {
    /// Attach a parked state to region `p`'s index as a live session. The
    /// state must come from this region's lineage (fresh, or previously
    /// suspended from the same region).
    pub fn resume(&self, p: usize, state: SessionState) -> Session<'_> {
        let r = &self.parts[p];
        Session::resume(&r.index, &r.net, state)
    }

    /// Objects with `d_G(q, o) ≤ eps`, ascending object id — element-wise
    /// equal to the single-index range answer. `sess` must be a session on
    /// `part = part_of(q)`.
    pub fn try_range(
        &self,
        sess: &mut Session<'_>,
        part: usize,
        q: NodeId,
        eps: Dist,
    ) -> OpResult<Vec<ObjectId>> {
        let within = self.within_local(sess, part, self.local_node(q), eps)?;
        Ok(within.into_iter().map(|(o, _)| o).collect())
    }

    /// Count/sum/min/max over the exact distances of qualifying objects.
    pub fn try_aggregate(
        &self,
        sess: &mut Session<'_>,
        part: usize,
        q: NodeId,
        eps: Dist,
    ) -> OpResult<RangeAggregate> {
        let within = self.within_local(sess, part, self.local_node(q), eps)?;
        let mut agg = RangeAggregate::default();
        for (_, d) in within {
            agg.count += 1;
            agg.sum += d as u64;
            agg.min = Some(agg.min.map_or(d, |m| m.min(d)));
            agg.max = Some(agg.max.map_or(d, |m| m.max(d)));
        }
        Ok(agg)
    }

    /// The k nearest objects by `(distance, object id)` with exact
    /// distances.
    pub fn try_knn(
        &self,
        sess: &mut Session<'_>,
        part: usize,
        q: NodeId,
        k: usize,
    ) -> OpResult<Vec<KnnResult>> {
        let dists = self.all_dists_bounded(sess, part, q, Some(k))?;
        let mut pairs: Vec<(Dist, ObjectId)> = dists
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != INFINITY)
            .map(|(o, &d)| (d, ObjectId(o as u32)))
            .collect();
        pairs.sort_unstable();
        pairs.truncate(k.min(pairs.len()));
        Ok(pairs
            .into_iter()
            .map(|(d, o)| KnnResult {
                object: o,
                dist: Some(d),
            })
            .collect())
    }

    /// The id-sorted k-nearest *set* at `q` (ties at the cut broken by
    /// object id) — one path node's CNN answer.
    pub fn try_cnn_set(
        &self,
        sess: &mut Session<'_>,
        part: usize,
        q: NodeId,
        k: usize,
    ) -> OpResult<Vec<ObjectId>> {
        let knn = self.try_knn(sess, part, q, k)?;
        let mut set: Vec<ObjectId> = knn.into_iter().map(|r| r.object).collect();
        set.sort_unstable();
        Ok(set)
    }

    /// This region's contribution to a self ε-join: every pair `(a, b)`
    /// with `a` hosted here, `a < b`, and `d_G(host a, host b) ≤ eps`. A
    /// cross-region pair is emitted only by the region hosting the smaller
    /// object id, so concatenating all regions' rows yields each pair once.
    pub fn try_join_rows(
        &self,
        sess: &mut Session<'_>,
        part: usize,
        eps: Dist,
    ) -> OpResult<Vec<(ObjectId, ObjectId)>> {
        let r = &self.parts[part];
        let mut pairs = Vec::new();
        for &(lo, ga) in &r.real_objs {
            let host = r.objects.node_of(lo);
            for (gb, _) in self.within_local(sess, part, host, eps)? {
                if gb > ga {
                    pairs.push((ga, gb));
                }
            }
        }
        Ok(pairs)
    }

    /// Exact `d_G(q, o)` for **every** global object, indexed by object id.
    /// `q` is a global node; `sess` must belong to `part = part_of(q)`.
    pub fn try_all_dists(
        &self,
        sess: &mut Session<'_>,
        part: usize,
        q: NodeId,
    ) -> OpResult<Vec<Dist>> {
        self.all_dists_bounded(sess, part, q, None)
    }

    /// [`try_all_dists`](Self::try_all_dists), optionally glue-pruned for a
    /// kNN caller: with `knn_k = Some(k)`, the k-th smallest *local*
    /// candidate distance caps the boundary expansion. Remote contributions
    /// only ever lower a distance, so the final k-th answer is ≤ that cap;
    /// any path through a boundary label past it can neither reach the
    /// top k nor change a value that does. Entries past the cap may then
    /// stay at their unimproved local value (or `INFINITY`) — exactly the
    /// entries a k-truncation discards.
    fn all_dists_bounded(
        &self,
        sess: &mut Session<'_>,
        part: usize,
        q: NodeId,
        knn_k: Option<usize>,
    ) -> OpResult<Vec<Dist>> {
        debug_assert_eq!(self.part_of(q), part);
        let ql = self.local_node(q);
        let r = &self.parts[part];
        let mut dists = vec![INFINITY; self.num_objects];
        for &(lo, go) in &r.real_objs {
            dists[go.index()] = sess.try_retrieve_exact(ql, lo)?;
        }
        let bound = match knn_k {
            Some(k) if k > 0 => {
                let mut local: Vec<Dist> = r
                    .real_objs
                    .iter()
                    .map(|&(_, go)| dists[go.index()])
                    .filter(|&d| d != INFINITY)
                    .collect();
                if local.len() >= k {
                    *local.select_nth_unstable(k - 1).1
                } else {
                    INFINITY
                }
            }
            _ => INFINITY,
        };
        let mut init = Vec::with_capacity(r.boundary_objs.len());
        for &(lo, b) in &r.boundary_objs {
            init.push((b, sess.try_retrieve_exact(ql, lo)?));
        }
        let labels = self.expand_frontier(sess, &init, bound);
        self.apply_remote(&labels, bound, &mut dists);
        Ok(dists)
    }

    /// Exact `(object, d_G)` pairs with `d_G ≤ eps`, ascending object id,
    /// from a region-local query node.
    fn within_local(
        &self,
        sess: &mut Session<'_>,
        part: usize,
        ql: NodeId,
        eps: Dist,
    ) -> OpResult<Vec<(ObjectId, Dist)>> {
        let r = &self.parts[part];
        let cand = sess.try_range(ql, eps)?;
        let mut dists = vec![INFINITY; self.num_objects];
        let mut init = Vec::new();
        for lo in cand {
            // One exact retrieval serves both roles of a host that is real
            // and boundary at once.
            let d = sess.try_retrieve_exact(ql, lo)?;
            if let Ok(i) = r.real_objs.binary_search_by_key(&lo, |&(l, _)| l) {
                dists[r.real_objs[i].1.index()] = d;
            }
            if let Ok(i) = r.boundary_objs.binary_search_by_key(&lo, |&(l, _)| l) {
                init.push((r.boundary_objs[i].1, d));
            }
        }
        let labels = self.expand_frontier(sess, &init, eps);
        self.apply_remote(&labels, eps, &mut dists);
        Ok(dists
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d <= eps)
            .map(|(o, &d)| (ObjectId(o as u32), d))
            .collect())
    }

    /// Multi-source boundary distances by hub-label merges: `init` holds
    /// `(global boundary index, exact region-local distance)` seeds; the
    /// returned labels are exact `d_G(q, b)` for every boundary node whose
    /// distance is ≤ `bound` (INFINITY otherwise). The seeds' labels fold
    /// into one hub→distance map for the virtual source; the hubs that map
    /// touches are then read back through the *inverted* labels
    /// ([`GlueBuckets`](crate::index)), so only buckets of reached hubs are
    /// scanned — and each bucket's distance-ascending rows stop at the
    /// first entry past `bound`. Each label folded or bucket opened is one
    /// label lookup on the session, each `(hub, dist)` / `(boundary,
    /// dist)` entry advanced over one scanned entry.
    fn expand_frontier(
        &self,
        sess: &mut Session<'_>,
        init: &[(u32, Dist)],
        bound: Dist,
    ) -> Vec<Dist> {
        let nb = self.all_boundary.len();
        let mut labels = vec![INFINITY; nb];
        let mut hub_min = vec![INFINITY; nb];
        let mut seeded: Vec<u32> = Vec::new();
        let mut lookups = 0u64;
        let mut scanned = 0u64;
        for &(b, d0) in init {
            if d0 > bound {
                continue;
            }
            let (hs, ds) = self.glue.label_of(NodeId(b));
            lookups += 1;
            scanned += hs.len() as u64;
            for (h, &dh) in hs.iter().zip(ds) {
                let d = d0.saturating_add(dh);
                if d < hub_min[h.index()] {
                    if hub_min[h.index()] == INFINITY {
                        seeded.push(h.0);
                    }
                    hub_min[h.index()] = d;
                }
            }
        }
        // Two equivalent read-backs. Narrow expansions (kNN capped by the
        // k-th local candidate, small ε) reach few hubs: scan just those
        // hubs' buckets, each stopping at the first distance-ascending row
        // past `bound`. Wide expansions reach most hubs, and the bucket
        // walk's scattered `labels` writes lose to one cache-friendly
        // sequential pass over every boundary node's label — switch over
        // when the seeded buckets cover most rows anyway.
        let in_buckets: usize = seeded
            .iter()
            .map(|&h| self.glue_buckets.len_of(h as usize))
            .sum();
        if in_buckets * 2 < self.glue_buckets.total_rows() {
            for &h in &seeded {
                let m = hub_min[h as usize];
                lookups += 1;
                for &(b, d) in self.glue_buckets.rows_of(h as usize) {
                    scanned += 1;
                    let t = m.saturating_add(d);
                    if t > bound {
                        break; // rows ascend by dist: nothing further fits
                    }
                    if t < labels[b as usize] {
                        labels[b as usize] = t;
                    }
                }
            }
        } else if !seeded.is_empty() {
            for (bi, slot) in labels.iter_mut().enumerate() {
                let (hs, ds) = self.glue.label_of(NodeId(bi as u32));
                lookups += 1;
                scanned += hs.len() as u64;
                let mut best = INFINITY;
                for (h, &dh) in hs.iter().zip(ds) {
                    let m = hub_min[h.index()];
                    if m < best {
                        best = best.min(m.saturating_add(dh));
                    }
                }
                if best <= bound {
                    *slot = best;
                }
            }
        }
        sess.stats.label_lookups += lookups;
        sess.stats.label_entries_scanned += scanned;
        labels
    }

    /// Close every object's distance through the glue rows:
    /// `dists[o] = min(dists[o], min_{b' ∈ ∂region(o)} label(b') + row(b', o))`.
    /// Regions whose nearest boundary label exceeds `bound` cannot improve
    /// any in-bound answer and are skipped whole.
    fn apply_remote(&self, labels: &[Dist], bound: Dist, dists: &mut [Dist]) {
        for p2 in 0..self.parts.len() {
            let (b0, b1) = (self.boundary_base[p2], self.boundary_base[p2 + 1]);
            let lmin = labels[b0..b1].iter().copied().min().unwrap_or(INFINITY);
            if lmin == INFINITY || lmin > bound {
                continue;
            }
            let rows = &self.obj_rows[p2];
            for (rk, &(_, go)) in self.parts[p2].real_objs.iter().enumerate() {
                let mut best = dists[go.index()];
                for (bi, row) in rows.iter().enumerate() {
                    let l = labels[b0 + bi];
                    if l >= best {
                        continue;
                    }
                    let t = l.saturating_add(row[rk]);
                    if t < best {
                        best = t;
                    }
                }
                dists[go.index()] = best;
            }
        }
    }
}

/// A serial session pool over a [`PartitionedIndex`]: one detachable
/// [`SessionState`] per region, resumed on demand. This is the standalone
/// (single-threaded) face of the shard router — tests, benches and tools
/// use it directly; `dsi-service` wires the same per-region operators into
/// its lock-striped shards instead.
pub struct ShardedSessions<'a> {
    pidx: &'a PartitionedIndex,
    states: Vec<Option<SessionState>>,
}

impl<'a> ShardedSessions<'a> {
    /// One fresh state per region with `pool_pages` buffer pages each.
    pub fn new(pidx: &'a PartitionedIndex, pool_pages: usize) -> Self {
        let states = (0..pidx.num_parts())
            .map(|_| Some(SessionState::new(pool_pages)))
            .collect();
        ShardedSessions { pidx, states }
    }

    fn on_part<T>(
        &mut self,
        p: usize,
        f: impl FnOnce(&PartitionedIndex, &mut Session<'_>) -> OpResult<T>,
    ) -> T {
        let pidx = self.pidx;
        let state = self.states[p].take().expect("state parked");
        let mut sess = pidx.resume(p, state);
        let out = f(pidx, &mut sess);
        self.states[p] = Some(sess.suspend());
        out.expect("storage fault on a session without a fault plan")
    }

    /// Range query from a global node.
    pub fn range(&mut self, q: NodeId, eps: Dist) -> Vec<ObjectId> {
        let p = self.pidx.part_of(q);
        self.on_part(p, |pidx, sess| pidx.try_range(sess, p, q, eps))
    }

    /// kNN query from a global node.
    pub fn knn(&mut self, q: NodeId, k: usize) -> Vec<KnnResult> {
        let p = self.pidx.part_of(q);
        self.on_part(p, |pidx, sess| pidx.try_knn(sess, p, q, k))
    }

    /// Range aggregate from a global node.
    pub fn aggregate(&mut self, q: NodeId, eps: Dist) -> RangeAggregate {
        let p = self.pidx.part_of(q);
        self.on_part(p, |pidx, sess| pidx.try_aggregate(sess, p, q, eps))
    }

    /// Self ε-join over all regions, pairs `(a, b)` with `a < b`, sorted.
    pub fn join(&mut self, eps: Dist) -> Vec<(ObjectId, ObjectId)> {
        let mut pairs = Vec::new();
        for p in 0..self.pidx.num_parts() {
            pairs.extend(self.on_part(p, |pidx, sess| pidx.try_join_rows(sess, p, eps)));
        }
        pairs.sort_unstable();
        pairs
    }

    /// Continuous kNN along a (global) path: per-node k-nearest sets
    /// computed through each node's own region session, merged into
    /// maximal equal-answer segments.
    pub fn continuous_knn(&mut self, path: &[NodeId], k: usize) -> Vec<CnnSegment> {
        let sets: Vec<Vec<ObjectId>> = path
            .iter()
            .map(|&q| {
                let p = self.pidx.part_of(q);
                self.on_part(p, |pidx, sess| pidx.try_cnn_set(sess, p, q, k))
            })
            .collect();
        merge_segments(sets.into_iter())
    }

    /// Set the entry-granular decode policy on every region session.
    pub fn set_entry_decode(&mut self, mode: dsi_signature::EntryDecodeMode) {
        for s in self.states.iter_mut() {
            s.as_mut().expect("state parked").set_entry_decode(mode);
        }
    }

    /// Merged IO counters across all region sessions.
    pub fn io_stats(&self) -> dsi_storage::IoStats {
        self.states
            .iter()
            .map(|s| s.as_ref().expect("state parked").io_stats())
            .sum()
    }

    /// Merged operation counters across all region sessions.
    pub fn op_stats(&self) -> dsi_signature::OpStats {
        self.states
            .iter()
            .map(|s| s.as_ref().expect("state parked").op_stats())
            .sum()
    }
}
