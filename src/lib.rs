//! # distance-signature
//!
//! A production-quality Rust reproduction of **"Distance Indexing on Road
//! Networks"** (Haibo Hu, Dik Lun Lee, Victor C. S. Lee, VLDB 2006).
//!
//! The paper proposes the *distance signature*: a general-purpose
//! per-node index over the network distances to every object of a dataset,
//! discretized into exponentially widening categories and augmented with
//! backtracking links, supporting efficient distance retrieval, comparison
//! and sorting, and through those, range / kNN / aggregation / join queries
//! — "a counterpart of the R-tree in spatial network databases".
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`graph`] — road-network substrate (CSR graph, generators, datasets,
//!   Dijkstra/A*, spanning-tree maintenance).
//! * [`storage`] — page/buffer-pool disk model with CCAM-style clustering,
//!   used for the paper's page-access metrics.
//! * [`rtree`] — 2-D R-tree (used by the NVD and IER baselines).
//! * [`signature`] — the distance-signature index itself: categories,
//!   encoding, compression, query processing, updates, and the analytical
//!   cost model.
//! * [`hierarchy`] — contraction-hierarchy distance oracle: edge-difference
//!   ordering, shortcut insertion, bidirectional upward p2p queries, and
//!   PHAST one-to-all sweeps (third query backend and the fast-construction
//!   substrate for index builds).
//! * [`baselines`] — INE, full index, NVD/VN3, and IER comparators.
//! * [`service`] — multi-threaded query service: lock-striped sessions,
//!   worker-pool batch execution, workload generation, and latency stats.
//!
//! ## Quickstart
//!
//! ```
//! use distance_signature::graph::{generate, ObjectSet, NodeId};
//! use distance_signature::signature::{SignatureIndex, SignatureConfig};
//!
//! // A small road network and a handful of objects.
//! let net = generate::grid(16, 16);
//! let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
//! let objects = ObjectSet::uniform(&net, 0.05, &mut rng);
//!
//! // Build the signature index and answer a 3-NN query.
//! use distance_signature::signature::query::knn::{knn, KnnType};
//! let index = SignatureIndex::build(&net, &objects, &SignatureConfig::default());
//! let mut session = index.session(&net);
//! let result = knn(&mut session, NodeId(0), 3, KnnType::Type1);
//! assert_eq!(result.len(), 3);
//! ```

pub use dsi_baselines as baselines;
pub use dsi_graph as graph;
pub use dsi_hierarchy as hierarchy;
pub use dsi_rtree as rtree;
pub use dsi_service as service;
pub use dsi_signature as signature;
pub use dsi_storage as storage;

/// The most commonly used items in one import.
///
/// ```
/// use distance_signature::prelude::*;
/// ```
pub mod prelude {
    pub use dsi_graph::generate::{grid, random_planar, PlanarConfig};
    pub use dsi_graph::{Dist, NodeId, ObjectId, ObjectSet, RoadNetwork};
    pub use dsi_service::{QueryService, ServiceConfig, WorkloadConfig};
    pub use dsi_signature::query::aggregate::{aggregate_within, count_within};
    pub use dsi_signature::query::cnn::{continuous_knn, CnnSegment};
    pub use dsi_signature::query::join::{epsilon_join, self_epsilon_join};
    pub use dsi_signature::query::knn::{knn, knn_with_paths, KnnResult, KnnType};
    pub use dsi_signature::query::range::range_query;
    pub use dsi_signature::{
        Session, SessionState, SignatureConfig, SignatureIndex, SignatureMaintainer,
    };
}
