#!/usr/bin/env bash
# Hub-label bench snapshot → BENCH_PR10.json at the repo root.
#
# Usage:
#   scripts/bench_labels.sh
#   OUT=BENCH_smoke.json CRITERION_SAMPLE_SIZE=5 scripts/bench_labels.sh
#
# Four sections on top of the raw criterion medians:
#
# * label_oracle — the merge-scan p2p against the CH upward search it was
#   extracted from, plus the one-to-many bucket scan against 64 pairwise
#   merges. The PR 10 acceptance line is hl_speedup >= 3.
# * sharded_glue — per-K shard-router query medians (K in {2,4,8}) next
#   to the BENCH_PR7.json baselines, which stitched cross-partition
#   queries with a boundary-frontier Dijkstra instead of label merges.
#   The PR7 numbers were recorded two PRs of query-path changes ago
#   (epoch snapshots, page-file stores), so the apples-to-apples
#   acceptance line is the *same-day* frontier baseline: run
#   `cargo bench -p dsi-bench --bench sharded` in a worktree at the
#   pre-glue commit and point FRONTIER_CRITERION at its criterion dir —
#   speedup_vs_frontier_kK > 1 at every K. Re-harvest without re-running
#   the benches via SKIP_BENCH=1.
# * labels_size — the resident label footprint from the size_report
#   binary (entries, avg label length, bytes/node).
# * workload — end-to-end workload cells on the hl and sharded backends,
#   with the label_lookups / label_entries counters from the CLI's
#   machine-readable line.

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_PR10.json}"
BASELINE="${BASELINE:-BENCH_PR7.json}"
CRIT_DIR="${CARGO_TARGET_DIR:-target}/criterion"
WORKERS="${WORKERS:-2}"
SEED="${SEED:-13}"
WL_NODES="${WL_NODES:-5000}"
WL_QUERIES="${WL_QUERIES:-2000}"

# A fresh snapshot should not inherit estimates from earlier runs.
if [ -z "${SKIP_BENCH:-}" ]; then
    rm -rf "$CRIT_DIR"
    cargo bench -p dsi-bench --bench labels
    cargo bench -p dsi-bench --bench sharded
fi

jq -n --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
      --arg host "$(uname -sm)" \
      --arg samples "${CRITERION_SAMPLE_SIZE:-default}" '
    {generated: $date, host: $host, sample_size: $samples, benches: {}}
    ' > "$OUT.tmp"

find "$CRIT_DIR" -path '*/new/estimates.json' | sort | while read -r est; do
    rel="${est#"$CRIT_DIR"/}"          # <group>/<id>/new/estimates.json
    key="$(dirname "$(dirname "$rel")")"
    jq --arg key "$key" --slurpfile e "$est" \
       '.benches[$key] = {median_ns: $e[0].median.point_estimate,
                          mean_ns: $e[0].mean.point_estimate}' \
       "$OUT.tmp" > "$OUT.tmp2" && mv "$OUT.tmp2" "$OUT.tmp"
done

# Label oracle vs the hierarchy it was extracted from.
jq '
    .benches as $b
    | .label_oracle = {
        ch_p2p_ns: ($b["labels/ch_p2p"].median_ns // null),
        hl_p2p_ns: ($b["labels/hl_p2p"].median_ns // null),
        hl_speedup: (if ($b["labels/ch_p2p"] and $b["labels/hl_p2p"])
                     then ($b["labels/ch_p2p"].median_ns / $b["labels/hl_p2p"].median_ns)
                     else null end),
        hl_p2p_x64_ns: ($b["labels/hl_p2p_x64"].median_ns // null),
        hl_one_to_many_64_ns: ($b["labels/hl_one_to_many_64"].median_ns // null),
        one_to_many_speedup: (if ($b["labels/hl_p2p_x64"] and $b["labels/hl_one_to_many_64"])
                              then ($b["labels/hl_p2p_x64"].median_ns / $b["labels/hl_one_to_many_64"].median_ns)
                              else null end)
      }
    ' "$OUT.tmp" > "$OUT.tmp2" && mv "$OUT.tmp2" "$OUT.tmp"

# Per-K shard-router medians against the PR7 (frontier-Dijkstra glue)
# baselines, when that snapshot is on disk.
if [ -f "$BASELINE" ]; then
    jq --slurpfile base "$BASELINE" '
        .benches as $b
        | ($base[0].benches // {}) as $bb
        | .sharded_glue = (reduce (2, 4, 8) as $k ({};
            . + {("query_k\($k)_ns"): ($b["sharded/query_k\($k)"].median_ns // null),
                 ("glue_k\($k)_ns"): ($b["sharded_glue/glue_k\($k)"].median_ns // null),
                 ("baseline_pr7_query_k\($k)_ns"): ($bb["sharded/query_k\($k)"].median_ns // null),
                 ("speedup_vs_pr7_k\($k)"): (
                    if ($b["sharded/query_k\($k)"] and $bb["sharded/query_k\($k)"])
                    then ($bb["sharded/query_k\($k)"].median_ns / $b["sharded/query_k\($k)"].median_ns)
                    else null end)}))
        ' "$OUT.tmp" > "$OUT.tmp2" && mv "$OUT.tmp2" "$OUT.tmp"
fi

# Same-day frontier-Dijkstra baseline: FRONTIER_CRITERION points at the
# criterion dir of a sharded bench run at the pre-glue commit (same
# machine, same day), isolating the router change from everything else.
if [ -n "${FRONTIER_CRITERION:-}" ]; then
    for k in 2 4 8; do
        est="$FRONTIER_CRITERION/sharded/query_k$k/new/estimates.json"
        [ -f "$est" ] || continue
        jq --arg k "$k" --slurpfile e "$est" '
            .sharded_glue["frontier_k\($k)_ns"] = $e[0].median.point_estimate
            | .sharded_glue["speedup_vs_frontier_k\($k)"] =
                ($e[0].median.point_estimate / .sharded_glue["query_k\($k)_ns"])
            ' "$OUT.tmp" > "$OUT.tmp2" && mv "$OUT.tmp2" "$OUT.tmp"
    done
fi

# Resident label footprint.
SIZE_JSON="$(DSI_NODES="${DSI_NODES:-5000}" cargo run --release -q -p dsi-bench --bin size_report)"
jq --argjson size "$SIZE_JSON" '
    .labels_size = {nodes: $size.nodes,
                    label_entries: $size.label_entries,
                    label_avg_len: $size.label_avg_len,
                    label_bytes: $size.label_bytes,
                    label_bytes_per_node: $size.label_bytes_per_node}
    ' "$OUT.tmp" > "$OUT.tmp2" && mv "$OUT.tmp2" "$OUT.tmp"

# End-to-end workload cells: the hub-label backend on a single index and
# the shard router gluing through labels, label counters included.
cargo build --release -q -p dsi-service --bin workload

cell() {
    local line
    line="$(target/release/workload "$@" | grep '^io_logical=' | tail -1)"
    printf '%s\n' "$line" | tr ' ' '\n' | \
        jq -Rn '[inputs | split("=") | {(.[0]): (.[1] | tonumber)}] | add'
}

wl_args=(--nodes "$WL_NODES" --queries "$WL_QUERIES" --workers "$WORKERS" \
         --seed "$SEED" --skew zipf:0.8)
echo "-- workload cell: backend=hl --"
obj="$(cell "${wl_args[@]}" --backend hl)"
jq --argjson obj "$obj" '.workload = {hl: $obj}' \
   "$OUT.tmp" > "$OUT.tmp2" && mv "$OUT.tmp2" "$OUT.tmp"
echo "-- workload cell: backend=sharded partitions=4 --"
obj="$(cell "${wl_args[@]}" --backend sharded --partitions 4)"
jq --argjson obj "$obj" '.workload.sharded_k4 = $obj' \
   "$OUT.tmp" > "$OUT.tmp2" && mv "$OUT.tmp2" "$OUT.tmp"

mv "$OUT.tmp" "$OUT"
echo "wrote $OUT ($(jq '.benches | length' "$OUT") benches)"
