#!/usr/bin/env bash
# Snapshot the zero-pause-maintenance reader-tail numbers into a
# machine-readable JSON file (default: BENCH_PR8.json at the repo root).
#
# Usage:
#   scripts/bench_maintenance.sh
#   OUT=BENCH_smoke.json NODES=2000 QUERIES=800 scripts/bench_maintenance.sh
#
# The criterion harness can't measure an *in-batch* reader p99 while an
# updater thread races it, so this snapshot drives the workload CLI's
# mixed mode (`--update-rate`) instead: the CLI serves the same query
# stream twice — once quiescent, once with update batches publishing
# epochs concurrently — and prints one machine-readable line
#   p99_baseline_ns=... p99_concurrent_ns=... p99_ratio=... epoch_swaps=...
# per run. The PR8 acceptance line is p99_ratio <= 2.0 at every update
# rate (readers never block on maintenance; the tail moves only by cache
# and scheduler noise, not by a stop-the-world pause).

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_PR8.json}"
NODES="${NODES:-5000}"
QUERIES="${QUERIES:-2000}"
WORKERS="${WORKERS:-4}"
SEED="${SEED:-13}"

cargo build --release -q -p dsi-service --bin workload

jq -n --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
      --arg host "$(uname -sm)" \
      --argjson nodes "$NODES" --argjson queries "$QUERIES" \
      --argjson workers "$WORKERS" \
      '{generated: $date, host: $host,
        config: {nodes: $nodes, queries: $queries, workers: $workers},
        maintenance: {}}' > "$OUT.tmp"

for rate in 0.5 1 2; do
    echo "-- mixed workload, update rate $rate --"
    line="$(target/release/workload \
        --nodes "$NODES" --queries "$QUERIES" --workers "$WORKERS" \
        --seed "$SEED" --skew zipf:0.8 --update-rate "$rate" \
        | tee /dev/stderr | grep '^p99_baseline_ns=')"
    # The line is `k=v k=v ...`; fold it into a JSON object.
    obj="$(printf '%s\n' "$line" | tr ' ' '\n' | \
        jq -Rn '[inputs | split("=") | {(.[0]): (.[1] | tonumber)}] | add')"
    jq --arg rate "$rate" --argjson obj "$obj" \
       '.maintenance[("rate_" + $rate)] = $obj' \
       "$OUT.tmp" > "$OUT.tmp2" && mv "$OUT.tmp2" "$OUT.tmp"
done

# The acceptance summary: the worst ratio across rates, and the verdict.
jq '
    .maintenance as $m
    | ([$m[] | .p99_ratio] | max) as $worst
    | .update_latency_hiding = {
        worst_p99_ratio: $worst,
        swaps_total: ([$m[] | .epoch_swaps] | add),
        readers_never_block: ($worst <= 2.0)
      }' "$OUT.tmp" > "$OUT.tmp2" && mv "$OUT.tmp2" "$OUT.tmp"

mv "$OUT.tmp" "$OUT"
jq '.update_latency_hiding' "$OUT"
echo "wrote $OUT"
