#!/usr/bin/env bash
# Offline CI gate: formatting, lints (deny warnings), and the full test
# suite. Everything runs against the vendored shims — no network access.
#
# Usage: scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== cargo bench --no-run (benches must keep compiling) =="
cargo bench --workspace --no-run

echo "== fault matrix (service equivalence under injected storage faults) =="
# Re-run the dsi-service fault suite under a matrix of fixed fault seeds
# crossed with both signature read paths (entry-granular decode on and
# off) and both degradation targets (hierarchy-first fallback on, or
# forced straight to Dijkstra): the answers must stay element-wise
# identical to a fault-free run no matter which deterministic fault
# schedule fires, which decode path serves the queries, or which exact
# backend absorbs the degraded ones.
for seed in 1 2 3; do
    for decode in on off; do
        for chfb in on off; do
            echo "-- DSI_FAULT_SEED=$seed DSI_ENTRY_DECODE=$decode DSI_CH_FALLBACK=$chfb --"
            DSI_FAULT_SEED=$seed DSI_ENTRY_DECODE=$decode DSI_CH_FALLBACK=$chfb \
                cargo test -q -p dsi-service --test faults
        done
    done
done

echo "== partition fault matrix (sharded router under injected storage faults) =="
# The same fault suite served through the shard router over K partitioned
# indexes: answers stay element-wise identical, and (the isolation test)
# faults aimed at one partition degrade and quarantine only that
# partition's stripe — the other regions' counters stay zero.
for parts in 2 4; do
    for seed in 1 2; do
        echo "-- DSI_PARTITIONS=$parts DSI_FAULT_SEED=$seed --"
        DSI_PARTITIONS=$parts DSI_FAULT_SEED=$seed \
            cargo test -q -p dsi-service --test faults
    done
done

echo "== maintenance matrix (double-buffered epochs under faults and sharding) =="
# The zero-pause maintenance axis: update batches publish epochs while a
# faulty (and, in the partitioned cells, sharded) service answers queries.
# DSI_MAINT=double-buffer scales up the concurrent-maintenance cell in the
# faults suite and re-runs the serialized-order oracle (all backends) plus
# the publish kill-point recovery tests across the same seed and partition
# axes: answers stay element-wise equal to one serialized state, and every
# torn publish recovers to exactly one epoch.
for seed in 1 2; do
    for parts in 1 3; do
        echo "-- DSI_MAINT=double-buffer DSI_FAULT_SEED=$seed DSI_PARTITIONS=$parts --"
        DSI_MAINT=double-buffer DSI_FAULT_SEED=$seed DSI_PARTITIONS=$parts \
            cargo test -q -p dsi-service --test faults \
                concurrent_maintenance_under_faults_stays_exact
    done
    DSI_MAINT=double-buffer DSI_FAULT_SEED=$seed \
        cargo test -q -p dsi-service --test concurrent_maintenance
    DSI_MAINT=double-buffer DSI_FAULT_SEED=$seed \
        cargo test -q -p dsi-service --test recovery publish_kill_points
done

echo "ci: all checks passed"
