#!/usr/bin/env bash
# Offline CI gate: formatting, lints (deny warnings), and the full test
# suite. Everything runs against the vendored shims — no network access.
#
# Usage: scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== cargo bench --no-run (benches must keep compiling) =="
cargo bench --workspace --no-run

echo "== fault matrix (service equivalence under injected storage faults) =="
# Re-run the dsi-service fault suite under a matrix of fixed fault seeds
# crossed with both signature read paths (entry-granular decode on and
# off) and both degradation targets (hierarchy-first fallback on, or
# forced straight to Dijkstra): the answers must stay element-wise
# identical to a fault-free run no matter which deterministic fault
# schedule fires, which decode path serves the queries, or which exact
# backend absorbs the degraded ones.
for seed in 1 2 3; do
    for decode in on off; do
        for chfb in on off; do
            echo "-- DSI_FAULT_SEED=$seed DSI_ENTRY_DECODE=$decode DSI_CH_FALLBACK=$chfb --"
            DSI_FAULT_SEED=$seed DSI_ENTRY_DECODE=$decode DSI_CH_FALLBACK=$chfb \
                cargo test -q -p dsi-service --test faults
        done
    done
done

echo "== partition fault matrix (sharded router under injected storage faults) =="
# The same fault suite served through the shard router over K partitioned
# indexes: answers stay element-wise identical, and (the isolation test)
# faults aimed at one partition degrade and quarantine only that
# partition's stripe — the other regions' counters stay zero.
for parts in 2 4; do
    for seed in 1 2; do
        echo "-- DSI_PARTITIONS=$parts DSI_FAULT_SEED=$seed --"
        DSI_PARTITIONS=$parts DSI_FAULT_SEED=$seed \
            cargo test -q -p dsi-service --test faults
    done
done

echo "== hub-label matrix (label replay agrees with paged answers under faults) =="
# DSI_BACKEND=hl replays every served batch on the memory-resident
# hub-label backend, which never touches the page store and so never sees
# an injected fault: its answers are the fault-free truth every paged
# (and degraded, and quarantined) run must reproduce, tie-aware at kNN
# cuts, single-index and sharded alike.
for seed in 1 2; do
    echo "-- DSI_BACKEND=hl DSI_FAULT_SEED=$seed --"
    DSI_BACKEND=hl DSI_FAULT_SEED=$seed \
        cargo test -q -p dsi-service --test faults
done
echo "-- DSI_BACKEND=hl DSI_PARTITIONS=2 DSI_FAULT_SEED=1 --"
DSI_BACKEND=hl DSI_PARTITIONS=2 DSI_FAULT_SEED=1 \
    cargo test -q -p dsi-service --test faults

echo "== store matrix (physical page stores under injected faults) =="
# The same fault suite with the physical page store swapped in: answers
# must be element-wise identical whether a buffer miss is accounting-only
# (mem), a checksummed pread (file), or a mapped copy (mmap), and whether
# misses are served one page at a time or through the batched readahead
# window — the store mode changes the syscall pattern, never the answers
# or the deterministic fault schedule.
for store in mem file; do
    for seed in 1 2; do
        echo "-- DSI_STORE=$store DSI_FAULT_SEED=$seed --"
        DSI_STORE=$store DSI_FAULT_SEED=$seed \
            cargo test -q -p dsi-service --test faults
    done
done
echo "-- DSI_STORE=mmap DSI_FAULT_SEED=1 DSI_READAHEAD=4 --"
DSI_STORE=mmap DSI_FAULT_SEED=1 DSI_READAHEAD=4 \
    cargo test -q -p dsi-service --test faults
echo "-- DSI_STORE=file DSI_FAULT_SEED=2 DSI_READAHEAD=8 DSI_PARTITIONS=2 --"
DSI_STORE=file DSI_FAULT_SEED=2 DSI_READAHEAD=8 DSI_PARTITIONS=2 \
    cargo test -q -p dsi-service --test faults

echo "== tmpdir hygiene (epoch page files unlinked after every run) =="
# Every file-backed epoch materialises a scratch page file and unlinks it
# when the epoch retires (open descriptors keep reading the unlinked
# inode). Anything matching the scratch prefix after the suites above is
# a leak.
stray="$(find "${TMPDIR:-/tmp}" -maxdepth 1 -name 'dsi-pages-*' 2>/dev/null || true)"
if [ -n "$stray" ]; then
    echo "stray page files left behind:"
    echo "$stray"
    exit 1
fi

echo "== maintenance matrix (double-buffered epochs under faults and sharding) =="
# The zero-pause maintenance axis: update batches publish epochs while a
# faulty (and, in the partitioned cells, sharded) service answers queries.
# DSI_MAINT=double-buffer scales up the concurrent-maintenance cell in the
# faults suite and re-runs the serialized-order oracle (all backends,
# including the hub-label one) plus the publish kill-point recovery tests
# across the same seed and partition axes: answers stay element-wise equal
# to one serialized state, and every torn publish recovers to exactly one
# epoch. The DSI_BACKEND=hl cell adds the label replay to the
# serialized-order-under-faults oracle: whenever a reader batch and its
# replay pin the same epoch, the labels must answer identically.
for seed in 1 2; do
    for parts in 1 3; do
        echo "-- DSI_MAINT=double-buffer DSI_FAULT_SEED=$seed DSI_PARTITIONS=$parts --"
        DSI_MAINT=double-buffer DSI_FAULT_SEED=$seed DSI_PARTITIONS=$parts \
            cargo test -q -p dsi-service --test faults \
                concurrent_maintenance_under_faults_stays_exact
    done
    echo "-- DSI_MAINT=double-buffer DSI_BACKEND=hl DSI_FAULT_SEED=$seed --"
    DSI_MAINT=double-buffer DSI_BACKEND=hl DSI_FAULT_SEED=$seed \
        cargo test -q -p dsi-service --test faults \
            concurrent_maintenance_under_faults_stays_exact
    DSI_MAINT=double-buffer DSI_FAULT_SEED=$seed \
        cargo test -q -p dsi-service --test concurrent_maintenance
    DSI_MAINT=double-buffer DSI_FAULT_SEED=$seed \
        cargo test -q -p dsi-service --test recovery publish_kill_points
done

echo "ci: all checks passed"
