#!/usr/bin/env bash
# Offline CI gate: formatting, lints (deny warnings), and the full test
# suite. Everything runs against the vendored shims — no network access.
#
# Usage: scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "ci: all checks passed"
