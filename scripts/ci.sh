#!/usr/bin/env bash
# Offline CI gate: formatting, lints (deny warnings), and the full test
# suite. Everything runs against the vendored shims — no network access.
#
# Usage: scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== fault matrix (service equivalence under injected storage faults) =="
# Re-run the dsi-service fault suite under a matrix of fixed fault seeds:
# the answers must stay element-wise identical to a fault-free run no
# matter which deterministic fault schedule fires.
for seed in 1 2 3; do
    echo "-- DSI_FAULT_SEED=$seed --"
    DSI_FAULT_SEED=$seed cargo test -q -p dsi-service --test faults
done

echo "ci: all checks passed"
