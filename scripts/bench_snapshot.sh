#!/usr/bin/env bash
# Run the criterion benches and snapshot every median into a single
# machine-readable JSON file (default: BENCH_PR2.json at the repo root).
#
# Usage:
#   scripts/bench_snapshot.sh                 # all benches, full samples
#   OUT=BENCH_smoke.json CRITERION_SAMPLE_SIZE=5 scripts/bench_snapshot.sh
#   scripts/bench_snapshot.sh substrates      # only the named bench target(s)
#
# Each bench writes target/criterion/<group>/<id>/new/estimates.json
# (median/mean point estimates in ns); this script collects them into
#   { "benches": { "<group>/<id>": { "median_ns": ..., "mean_ns": ... } } }
# sorted by key, so diffs between snapshots are stable. When the service
# group is present, a derived "service_scaling" object records the
# w1/w2/w4 batch medians and the speedup of each over one worker (≈1.0 on
# a single-CPU container; see DESIGN.md). When the sharded group is
# present, a derived "sharded_scaling" object records per-K partitioned
# build/query medians and each K's build speedup over the single index.
# A "skip_directory" object (from the size_report binary) records the
# entry-decode directory's bytes/node and its fraction of the on-disk
# index at the default stride.

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_PR2.json}"
CRIT_DIR="${CARGO_TARGET_DIR:-target}/criterion"

# A fresh snapshot should not inherit estimates from earlier runs.
rm -rf "$CRIT_DIR"

if [ "$#" -gt 0 ]; then
    for bench in "$@"; do
        cargo bench -p dsi-bench --bench "$bench"
    done
else
    cargo bench -p dsi-bench
fi

jq -n --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
      --arg host "$(uname -sm)" \
      --arg samples "${CRITERION_SAMPLE_SIZE:-default}" '
    {generated: $date, host: $host, sample_size: $samples, benches: {}}
    ' > "$OUT.tmp"

find "$CRIT_DIR" -path '*/new/estimates.json' | sort | while read -r est; do
    rel="${est#"$CRIT_DIR"/}"          # <group>/<id>/new/estimates.json
    key="$(dirname "$(dirname "$rel")")"
    jq --arg key "$key" --slurpfile e "$est" \
       '.benches[$key] = {median_ns: $e[0].median.point_estimate,
                          mean_ns: $e[0].mean.point_estimate}' \
       "$OUT.tmp" > "$OUT.tmp2" && mv "$OUT.tmp2" "$OUT.tmp"
done

# Derived worker-scaling summary when the service group was benched.
jq '
    .benches as $b
    | ($b["service/mixed_w1"].median_ns // null) as $w1
    | if $w1 then
        .service_scaling = {
          w1_median_ns: $w1,
          w2_median_ns: ($b["service/mixed_w2"].median_ns // null),
          w4_median_ns: ($b["service/mixed_w4"].median_ns // null),
          speedup_w2: (if $b["service/mixed_w2"] then ($w1 / $b["service/mixed_w2"].median_ns) else null end),
          speedup_w4: (if $b["service/mixed_w4"] then ($w1 / $b["service/mixed_w4"].median_ns) else null end)
        }
      else . end
    ' "$OUT.tmp" > "$OUT.tmp2" && mv "$OUT.tmp2" "$OUT.tmp"

# Derived per-K build/query scaling when the sharded group was benched:
# the PR7 acceptance line is build_speedup_kK > 1.0 for some K (K-way
# partitioned construction beating the single-index build wall-clock).
jq '
    .benches as $b
    | ($b["sharded/build_single"].median_ns // null) as $bs
    | if $bs then
        .sharded_scaling = (
          reduce (2, 4, 8) as $k ({build_single_ns: $bs,
                                   query_single_ns: ($b["sharded/query_single"].median_ns // null)};
            . + {("build_k\($k)_ns"): ($b["sharded/build_k\($k)"].median_ns // null),
                 ("build_speedup_k\($k)"): (if $b["sharded/build_k\($k)"] then ($bs / $b["sharded/build_k\($k)"].median_ns) else null end),
                 ("query_k\($k)_ns"): ($b["sharded/query_k\($k)"].median_ns // null)}))
      else . end
    ' "$OUT.tmp" > "$OUT.tmp2" && mv "$OUT.tmp2" "$OUT.tmp"

# Skip-directory size overhead at the default stride (bytes/node and
# fraction of disk_bytes; the PR5 acceptance line is frac ≤ 0.10).
SIZE_JSON="$(DSI_NODES="${DSI_NODES:-3000}" cargo run --release -q -p dsi-bench --bin size_report)"
jq --argjson size "$SIZE_JSON" '.skip_directory = $size' \
   "$OUT.tmp" > "$OUT.tmp2" && mv "$OUT.tmp2" "$OUT.tmp"

mv "$OUT.tmp" "$OUT"
echo "wrote $OUT ($(jq '.benches | length' "$OUT") benches)"
