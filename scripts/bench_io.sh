#!/usr/bin/env bash
# Snapshot the physical-IO numbers for the file-backed page store into a
# machine-readable JSON file (default: BENCH_PR9.json at the repo root).
#
# Usage:
#   scripts/bench_io.sh
#   OUT=BENCH_smoke.json QUERIES=100 scripts/bench_io.sh
#
# Two experiments, both driven through the workload CLI's machine-readable
# counter line (`io_logical=... physical_reads=... pages_per_call=...`):
#
# * batched prefetch — the store matrix {mem,file} x {batch off,on} on a
#   dense-record index (records span ~4 pages) with a pool that holds the
#   working set, so every counter movement is coalescing, not thrash. The
#   acceptance line is physical read *calls* reduced >= 3x by batching,
#   with > 3 pages served per coalesced call, and identical fault totals
#   (modulo the readahead tail) between mem and file: the physical path
#   changes the syscall pattern, never the page schedule.
#
# * SLO admission — a deterministic latency storm (every other physical
#   read stalls 200us) against a tiny pool, with and without a 1ms
#   deadline. With the deadline, over-budget queries shed onto the exact
#   in-memory backend: worst-class p99 must come out strictly below the
#   no-deadline run's (bounded tail), with most of the batch shed.

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_PR9.json}"
WORKERS="${WORKERS:-2}"
SEED="${SEED:-13}"
# Batched-prefetch cell: dense records, resident working set.
IO_NODES="${IO_NODES:-2000}"
IO_DENSITY="${IO_DENSITY:-0.2}"
IO_QUERIES="${IO_QUERIES:-200}"
IO_POOL="${IO_POOL:-16384}"
# Admission cell: default-density index, starved pool, spike storm.
ADM_NODES="${ADM_NODES:-3000}"
ADM_QUERIES="${ADM_QUERIES:-600}"
ADM_POOL="${ADM_POOL:-32}"
DEADLINE_US="${DEADLINE_US:-1000}"

cargo build --release -q -p dsi-service --bin workload

# Run one workload cell and fold its `k=v k=v ...` counter line into JSON.
cell() {
    local line
    line="$(target/release/workload "$@" | grep '^io_logical=' | tail -1)"
    printf '%s\n' "$line" | tr ' ' '\n' | \
        jq -Rn '[inputs | split("=") | {(.[0]): (.[1] | tonumber)}] | add'
}

jq -n --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
      --arg host "$(uname -sm)" \
      --argjson workers "$WORKERS" \
      '{generated: $date, host: $host, config: {workers: $workers},
        io: {}, admission: {}}' > "$OUT.tmp"

io_args=(--nodes "$IO_NODES" --density "$IO_DENSITY" --queries "$IO_QUERIES" \
         --workers "$WORKERS" --seed "$SEED" --skew zipf:0.8 \
         --pool-pages "$IO_POOL")
for store in mem file; do
    for batch in off on; do
        echo "-- io cell: store=$store batch=$batch --"
        obj="$(cell "${io_args[@]}" --store "$store" --batch "$batch")"
        jq --arg k "${store}_batch_${batch}" --argjson obj "$obj" \
           '.io[$k] = $obj' "$OUT.tmp" > "$OUT.tmp2" && mv "$OUT.tmp2" "$OUT.tmp"
    done
done

adm_args=(--nodes "$ADM_NODES" --queries "$ADM_QUERIES" --workers "$WORKERS" \
          --seed "$SEED" --skew zipf:0.8 --pool-pages "$ADM_POOL" \
          --store file --spike-rate 0.5 --spike-us 200)
echo "-- admission cell: storm, no deadline --"
obj="$(cell "${adm_args[@]}")"
jq --argjson obj "$obj" '.admission.storm = $obj' \
   "$OUT.tmp" > "$OUT.tmp2" && mv "$OUT.tmp2" "$OUT.tmp"
echo "-- admission cell: storm, deadline ${DEADLINE_US}us --"
obj="$(cell "${adm_args[@]}" --deadline-us "$DEADLINE_US")"
jq --argjson obj "$obj" '.admission.storm_deadline = $obj' \
   "$OUT.tmp" > "$OUT.tmp2" && mv "$OUT.tmp2" "$OUT.tmp"

# Acceptance summary: batching must cut physical read calls >= 3x with
# > 3 pages per coalesced call and zero wasted prefetch; the deadline run
# must bound the storm's p99 while shedding most of the batch.
jq --argjson deadline_us "$DEADLINE_US" '
    .io as $io | .admission as $a
    | (($io.file_batch_off.physical_reads / $io.file_batch_on.physical_reads)
       * 1000 | round / 1000) as $reduction
    | (($a.storm.worst_p99_ns / $a.storm_deadline.worst_p99_ns)
       * 1000 | round / 1000) as $tail
    | .batched_prefetch = {
        physical_read_reduction: $reduction,
        pages_per_call: $io.file_batch_on.pages_per_call,
        prefetch_wasted: $io.file_batch_on.prefetch_wasted,
        mem_file_same_schedule:
          ($io.mem_batch_on.io_faults == $io.file_batch_on.io_faults),
        accepted: ($reduction >= 3
                   and $io.file_batch_on.pages_per_call > 3)
      }
    | .slo_admission = {
        deadline_us: $deadline_us,
        p99_storm_ns: $a.storm.worst_p99_ns,
        p99_deadline_ns: $a.storm_deadline.worst_p99_ns,
        p99_bound_ratio: $tail,
        shed: $a.storm_deadline.shed,
        bounded: ($tail > 1.0 and $a.storm_deadline.shed > 0)
      }' "$OUT.tmp" > "$OUT.tmp2" && mv "$OUT.tmp2" "$OUT.tmp"

mv "$OUT.tmp" "$OUT"
jq '{batched_prefetch, slo_admission}' "$OUT"
echo "wrote $OUT"
