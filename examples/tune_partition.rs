//! Scenario: choosing the category partition for your network (§5.1).
//!
//! Shows the three ways to pick `(c, T)`:
//! 1. the paper's closed form `c = e, T = sqrt(SP/e)`,
//! 2. the analytical grid-model optimum (numeric minimization of Eq. 1–3),
//! 3. an empirical mini-sweep on your actual network and workload —
//!
//! and demonstrates the paper's robustness claim: they all land within a
//! small factor of each other.
//!
//! ```sh
//! cargo run --release --example tune_partition
//! ```

use distance_signature::graph::generate::{random_planar, PlanarConfig};
use distance_signature::graph::{NodeId, ObjectSet};
use distance_signature::signature::analysis::{closed_form_optimum, numeric_optimum};
use distance_signature::signature::query::knn::{knn, KnnType};
use distance_signature::signature::{SignatureConfig, SignatureIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(51);
    let net = random_planar(
        &PlanarConfig {
            num_nodes: 6_000,
            mean_degree: 4.0,
            max_weight: 10,
        },
        &mut rng,
    );
    let objects = ObjectSet::uniform(&net, 0.01, &mut rng);

    // Workload knowledge: our queries are 5-NN, so the spreading SP is the
    // typical 6th-nearest-neighbour distance. Estimate it cheaply.
    let sample: Vec<NodeId> = (0..20)
        .map(|_| NodeId(rng.gen_range(0..net.num_nodes() as u32)))
        .collect();
    let probe = SignatureIndex::build(&net, &objects, &SignatureConfig::default());
    let mut sess = probe.session(&net);
    let mut sp_samples: Vec<u32> = sample
        .iter()
        .map(|&q| {
            knn(&mut sess, q, 6, KnnType::Type1)
                .last()
                .and_then(|r| r.dist)
                .unwrap_or(0)
        })
        .collect();
    sp_samples.sort_unstable();
    let sp = sp_samples[sp_samples.len() - 1].max(1);
    println!("estimated query spreading SP ≈ {sp}");

    // 1. Closed form.
    let (c1, t1) = closed_form_optimum(sp as f64);
    println!("closed form:      c = {c1:.2}, T = {t1:.0}");

    // 2. Analytical model.
    let (c2, t2, _) = numeric_optimum(sp as f64, objects.density(&net), objects.len() as f64);
    println!("grid-model argmin: c = {c2:.2}, T = {t2:.0}");

    // 3. Empirical sweep on the real network.
    let queries: Vec<NodeId> = (0..60)
        .map(|_| NodeId(rng.gen_range(0..net.num_nodes() as u32)))
        .collect();
    let mut results = Vec::new();
    for (c, t) in [
        (c1, t1.round().max(1.0) as u32),
        (c2, t2.round().max(1.0) as u32),
        (2.0, 5),
        (3.0, 10),
        (6.0, 25),
    ] {
        let cfg = SignatureConfig {
            c,
            t: Some(t),
            ..Default::default()
        };
        let idx = SignatureIndex::build(&net, &objects, &cfg);
        let mut sess = idx.session(&net);
        let t0 = Instant::now();
        for &q in &queries {
            let _ = knn(&mut sess, q, 5, KnnType::Type3);
        }
        let ms = 1000.0 * t0.elapsed().as_secs_f64() / queries.len() as f64;
        results.push(((c, t), ms, idx.disk_bytes()));
    }
    println!("\nempirical 5-NN sweep:");
    for ((c, t), ms, bytes) in &results {
        println!(
            "  c = {c:.2}, T = {t:>3}: {ms:.2} ms/query, {:.2} MB",
            *bytes as f64 / (1024.0 * 1024.0)
        );
    }
    let best = results.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    let worst = results.iter().map(|r| r.1).fold(0.0, f64::max);
    println!(
        "\nrobustness (paper, Fig 6.7): worst/best = {:.2} — parameter choice is forgiving",
        worst / best
    );
}
