//! Scenario: ambulance dispatch over a city road network.
//!
//! Hospitals are a *sparse* dataset (the regime the signature index
//! targets — §1 notes dense datasets are served well enough by plain
//! Dijkstra). An incident happens at a junction; dispatch needs:
//!
//! 1. the nearest hospitals **with exact distances and routes** (type-1
//!    kNN + path reconstruction via backtracking links),
//! 2. all hospitals within a service radius (range query),
//! 3. the same answers from the online-Dijkstra baseline (INE), to show
//!    the page-access gap the paper measures.
//!
//! ```sh
//! cargo run --release --example poi_dispatch
//! ```

use distance_signature::baselines::Ine;
use distance_signature::graph::generate::{random_planar, PlanarConfig};
use distance_signature::graph::{NodeId, ObjectSet};
use distance_signature::signature::query::knn::{knn, KnnType};
use distance_signature::signature::query::range::range_query;
use distance_signature::signature::{SignatureConfig, SignatureIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(911);
    let net = random_planar(
        &PlanarConfig {
            num_nodes: 8_000,
            mean_degree: 4.0,
            max_weight: 10,
        },
        &mut rng,
    );
    // Hospitals: a very sparse dataset (~0.1% of junctions).
    let hospitals = ObjectSet::uniform(&net, 0.001, &mut rng);
    println!(
        "city: {} junctions; {} hospitals",
        net.num_nodes(),
        hospitals.len()
    );

    let index = SignatureIndex::build(&net, &hospitals, &SignatureConfig::default());
    let mut session = index.session(&net);
    let incident = NodeId(4242);

    // --- 1. Two nearest hospitals, exact distances (type-1 kNN). ---
    session.reset_stats();
    let nearest = knn(&mut session, incident, 2, KnnType::Type1);
    println!("\nincident at {incident}:");
    for r in &nearest {
        println!(
            "  hospital {} at network distance {}",
            r.object,
            r.dist.unwrap()
        );
    }
    let sig_knn_io = session.io_stats();

    // Route to the nearest: follow the backtracking links hop by hop —
    // the signature stores the next road to take at every junction, so the
    // ambulance can be routed with *no* shortest-path computation.
    let target = nearest[0].object;
    let mut route = vec![incident];
    let mut cur = incident;
    while cur != index.host(target) {
        let sig = session.read_signature(cur);
        let (next, _) = net.neighbor_at(cur, sig.links[target.index()]);
        route.push(next);
        cur = next;
    }
    println!(
        "  route to hospital {target}: {} hops, first turns: {:?}...",
        route.len() - 1,
        &route[..route.len().min(6)]
    );

    // --- 2. Hospitals within a 15-minute radius (range query). ---
    session.reset_stats();
    let radius = 120;
    let in_range = range_query(&mut session, incident, radius);
    println!(
        "\n{} hospital(s) within radius {radius}; signature I/O: {} faults",
        in_range.len(),
        session.io_stats().faults
    );

    // --- 3. The INE baseline answering the same queries. ---
    let mut ine = Ine::new(&net, 64);
    ine.cold_reset();
    let ine_knn = ine.knn(&net, &hospitals, incident, 2);
    let ine_knn_io = ine.io_stats();
    ine.cold_reset();
    let ine_range = ine.range(&net, &hospitals, incident, radius);
    let ine_range_io = ine.io_stats();

    assert_eq!(
        nearest.iter().map(|r| r.dist.unwrap()).collect::<Vec<_>>(),
        ine_knn.iter().map(|&(_, d)| d).collect::<Vec<_>>(),
        "both engines must agree on distances"
    );
    assert_eq!(
        in_range, ine_range,
        "both engines must agree on the range result"
    );

    println!("\npage faults, signature vs INE (sparse data = long Dijkstra expansions):");
    println!(
        "  2-NN : signature {:>5}  INE {:>5}",
        sig_knn_io.faults, ine_knn_io.faults
    );
    println!(
        "  range: signature {:>5}  INE {:>5}",
        session.io_stats().faults,
        ine_range_io.faults
    );
}
