//! Quickstart: build a road network, place objects, build the distance
//! signature index, and run the full query repertoire.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use distance_signature::graph::generate::{random_planar, PlanarConfig};
use distance_signature::graph::{NodeId, ObjectSet};
use distance_signature::signature::category::DistRange;
use distance_signature::signature::query::aggregate::aggregate_within;
use distance_signature::signature::query::knn::{knn, KnnType};
use distance_signature::signature::query::range::range_query;
use distance_signature::signature::{SignatureConfig, SignatureIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A synthetic road network: 5,000 junctions, road lengths 1–10.
    let mut rng = StdRng::seed_from_u64(2006);
    let net = random_planar(
        &PlanarConfig {
            num_nodes: 5_000,
            mean_degree: 4.0,
            max_weight: 10,
        },
        &mut rng,
    );
    println!(
        "network: {} junctions, {} road segments",
        net.num_nodes(),
        net.num_edges()
    );

    // 2. A dataset: 1% of junctions host an object (restaurants, say).
    let restaurants = ObjectSet::uniform(&net, 0.01, &mut rng);
    println!("dataset: {} restaurants", restaurants.len());

    // 3. Build the distance-signature index (§3.1/§5): categories grow
    //    exponentially (c = e), signatures are Huffman-encoded and
    //    compressed, and records are paged with their adjacency lists.
    let index = SignatureIndex::build(&net, &restaurants, &SignatureConfig::default());
    println!(
        "index: {} categories, {:.2} MB on disk, {:.0}% of entries compressed",
        index.partition().num_categories(),
        index.disk_bytes() as f64 / (1024.0 * 1024.0),
        100.0 * index.report.compressed_fraction()
    );

    // 4. Query away. A session owns the buffer pool and counts the page
    //    accesses the paper reports.
    let mut session = index.session(&net);
    let here = NodeId(0);

    // Exact network distance to a specific restaurant (guided backtracking).
    let first = restaurants.objects().next().unwrap();
    println!(
        "d(here, {first}) = {} (exact), ∈ {:?} (one signature read)",
        session.retrieve_exact(here, first),
        session.retrieve_approx(here, first, DistRange::new(0, 0)),
    );

    // Range query: everything within 40 network units.
    let nearby = range_query(&mut session, here, 40);
    println!("{} restaurants within distance 40", nearby.len());

    // kNN, three flavours (§4.2).
    let t3 = knn(&mut session, here, 5, KnnType::Type3);
    let t1 = knn(&mut session, here, 5, KnnType::Type1);
    println!(
        "5-NN set: {:?}",
        t3.iter().map(|r| r.object).collect::<Vec<_>>()
    );
    println!(
        "5-NN with exact distances: {:?}",
        t1.iter()
            .map(|r| (r.object, r.dist.unwrap()))
            .collect::<Vec<_>>()
    );

    // Aggregation within a radius.
    let agg = aggregate_within(&mut session, here, 100);
    println!(
        "within 100: count={} mean_dist={:.1} min={:?} max={:?}",
        agg.count,
        agg.mean().unwrap_or(0.0),
        agg.min,
        agg.max
    );

    // The cost ledger.
    let io = session.io_stats();
    println!(
        "session I/O: {} logical page reads, {} faults; {} signature decodes, {} backtracking hops",
        io.logical, io.faults, session.stats.signature_reads, session.stats.hops
    );
}
