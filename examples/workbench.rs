//! A small command-line workbench over the library: generate networks,
//! build and persist indexes, and run queries — the "downstream user" flow.
//!
//! ```sh
//! cargo run --release --example workbench -- gen /tmp/city.net /tmp/poi.obj 8000 0.01
//! cargo run --release --example workbench -- build /tmp/city.net /tmp/poi.obj /tmp/poi.dssi
//! cargo run --release --example workbench -- knn /tmp/city.net /tmp/poi.obj /tmp/poi.dssi 17 5
//! cargo run --release --example workbench -- range /tmp/city.net /tmp/poi.obj /tmp/poi.dssi 17 100
//! cargo run --release --example workbench -- export /tmp/city.net /tmp/city.txt
//! ```

use std::process::ExitCode;

use distance_signature::graph::generate::{random_planar, PlanarConfig};
use distance_signature::graph::io as gio;
use distance_signature::graph::{NodeId, ObjectSet, RoadNetwork};
use distance_signature::signature::persist;
use distance_signature::signature::query::knn::{knn, KnnType};
use distance_signature::signature::query::range::range_query;
use distance_signature::signature::{SignatureConfig, SignatureIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage:\n  workbench gen <net.bin> <objects.bin> <nodes> <density>\n  \
                 workbench build <net.bin> <objects.bin> <index.dssi>\n  \
                 workbench knn <net.bin> <objects.bin> <index.dssi> <node> <k>\n  \
                 workbench range <net.bin> <objects.bin> <index.dssi> <node> <radius>\n  \
                 workbench export <net.bin> <edges.txt>"
            );
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "gen" => {
            let [net_path, obj_path, nodes, density] = take::<4>(&args[1..])?;
            let nodes: usize = nodes.parse().map_err(|_| "bad node count")?;
            let density: f64 = density.parse().map_err(|_| "bad density")?;
            let mut rng = StdRng::seed_from_u64(42);
            let net = random_planar(
                &PlanarConfig {
                    num_nodes: nodes,
                    ..Default::default()
                },
                &mut rng,
            );
            let objects = ObjectSet::uniform(&net, density, &mut rng);
            gio::save_network(&net, net_path).map_err(|e| e.to_string())?;
            gio::write_objects(
                &objects,
                std::fs::File::create(obj_path).map_err(|e| e.to_string())?,
            )
            .map_err(|e| e.to_string())?;
            println!(
                "wrote {net_path} ({} nodes, {} edges) and {obj_path} ({} objects)",
                net.num_nodes(),
                net.num_edges(),
                objects.len()
            );
            Ok(())
        }
        "build" => {
            let [net_path, obj_path, idx_path] = take::<3>(&args[1..])?;
            let (net, objects) = load_net_objects(net_path, obj_path)?;
            let idx = SignatureIndex::build(&net, &objects, &SignatureConfig::default());
            persist::save_index(&idx, idx_path).map_err(|e| e.to_string())?;
            println!(
                "built index: {} categories, {:.2} MB on disk, saved to {idx_path}",
                idx.partition().num_categories(),
                idx.disk_bytes() as f64 / (1024.0 * 1024.0)
            );
            Ok(())
        }
        "knn" => {
            let [net_path, obj_path, idx_path, node, k] = take::<5>(&args[1..])?;
            let (net, objects) = load_net_objects(net_path, obj_path)?;
            let idx = load_index(idx_path, &net)?;
            let node = parse_node(node, &net)?;
            let k: usize = k.parse().map_err(|_| "bad k")?;
            let mut sess = idx.session(&net);
            for r in knn(&mut sess, node, k, KnnType::Type1) {
                println!(
                    "object {} on node {} at distance {}",
                    r.object,
                    objects.node_of(r.object),
                    r.dist.unwrap()
                );
            }
            println!(
                "({} page faults, {} backtracking hops)",
                sess.io_stats().faults,
                sess.stats.hops
            );
            Ok(())
        }
        "range" => {
            let [net_path, obj_path, idx_path, node, radius] = take::<5>(&args[1..])?;
            let (net, objects) = load_net_objects(net_path, obj_path)?;
            let idx = load_index(idx_path, &net)?;
            let node = parse_node(node, &net)?;
            let radius: u32 = radius.parse().map_err(|_| "bad radius")?;
            let mut sess = idx.session(&net);
            let hits = range_query(&mut sess, node, radius);
            println!("{} object(s) within {radius} of {node}:", hits.len());
            for o in hits {
                println!("  object {o} on node {}", objects.node_of(o));
            }
            Ok(())
        }
        "export" => {
            let [net_path, txt_path] = take::<2>(&args[1..])?;
            let net = gio::load_network(net_path).map_err(|e| e.to_string())?;
            gio::write_edge_list(
                &net,
                std::fs::File::create(txt_path).map_err(|e| e.to_string())?,
            )
            .map_err(|e| e.to_string())?;
            println!("exported {} edges to {txt_path}", net.num_edges());
            Ok(())
        }
        other => Err(format!("unknown command {other}")),
    }
}

fn take<const N: usize>(args: &[String]) -> Result<[&String; N], String> {
    if args.len() != N {
        return Err(format!("expected {N} arguments, got {}", args.len()));
    }
    let mut it = args.iter();
    Ok(std::array::from_fn(|_| it.next().unwrap()))
}

fn load_net_objects(net_path: &str, obj_path: &str) -> Result<(RoadNetwork, ObjectSet), String> {
    let net = gio::load_network(net_path).map_err(|e| e.to_string())?;
    let objects = gio::read_objects(
        std::fs::File::open(obj_path).map_err(|e| e.to_string())?,
        &net,
    )
    .map_err(|e| e.to_string())?;
    Ok((net, objects))
}

fn load_index(path: &str, net: &RoadNetwork) -> Result<SignatureIndex, String> {
    persist::load_index(path, net).map_err(|e| e.to_string())
}

fn parse_node(s: &str, net: &RoadNetwork) -> Result<NodeId, String> {
    let id: u32 = s.parse().map_err(|_| "bad node id")?;
    if (id as usize) < net.num_nodes() {
        Ok(NodeId(id))
    } else {
        Err(format!("node {id} out of range (0..{})", net.num_nodes()))
    }
}
