//! Scenario: keeping the index live under traffic updates (§5.4), plus
//! dataset-to-dataset analytics (ε-join, §4.3).
//!
//! A delivery company watches road conditions: congested segments get their
//! weight raised, cleared ones lowered, and closures remove edges outright.
//! The signature index is maintained incrementally — no rebuild — and
//! queries stay exact throughout. Warehouses and customers form two
//! datasets joined within a delivery radius.
//!
//! ```sh
//! cargo run --release --example live_traffic
//! ```

use distance_signature::graph::generate::{random_planar, PlanarConfig};
use distance_signature::graph::{NodeId, ObjectSet, INFINITY};
use distance_signature::signature::query::join::epsilon_join;
use distance_signature::signature::query::knn::{knn, KnnType};
use distance_signature::signature::{SignatureConfig, SignatureIndex, SignatureMaintainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(77);
    let mut net = random_planar(
        &PlanarConfig {
            num_nodes: 4_000,
            mean_degree: 4.0,
            max_weight: 10,
        },
        &mut rng,
    );
    let warehouses = ObjectSet::uniform(&net, 0.005, &mut rng);
    println!(
        "network: {} junctions; {} warehouses",
        net.num_nodes(),
        warehouses.len()
    );

    let mut index = SignatureIndex::build(&net, &warehouses, &SignatureConfig::default());
    let mut maintainer = SignatureMaintainer::new(&net, &warehouses);

    // Customers are a *second* dataset, joined against the warehouse index.
    let customer_hosts: Vec<NodeId> = (0..30)
        .map(|_| loop {
            let n = NodeId(rng.gen_range(0..net.num_nodes() as u32));
            if warehouses.object_at(n).is_none() {
                break n;
            }
        })
        .collect();
    let customers = ObjectSet::from_nodes(&net, customer_hosts);

    let depot = NodeId(123);
    {
        let mut session = index.session(&net);
        let before = knn(&mut session, depot, 3, KnnType::Type1);
        println!("\nbefore traffic, 3 nearest warehouses from {depot}:");
        for r in &before {
            println!("  warehouse {} at {}", r.object, r.dist.unwrap());
        }
        let pairs = epsilon_join(&mut session, &customers, 60);
        println!(
            "ε-join: {} (customer, warehouse) pairs within distance 60",
            pairs.len()
        );
    }

    // --- A day of traffic: 40 random condition changes. ---
    println!("\napplying 40 traffic updates (congestion / clearing / closures)...");
    let mut closed: Vec<(NodeId, NodeId, u32)> = Vec::new();
    let mut total_entries = 0usize;
    let mut total_pages = 0u64;
    for round in 0..40 {
        let (u, v, w) = loop {
            let u = NodeId(rng.gen_range(0..net.num_nodes() as u32));
            let nbrs: Vec<_> = net
                .neighbors(u)
                .filter(|&(_, _, w)| w != INFINITY)
                .collect();
            if !nbrs.is_empty() {
                let (_, v, w) = nbrs[rng.gen_range(0..nbrs.len())];
                break (u, v, w);
            }
        };
        let new_w = match round % 4 {
            0 => w + 5,          // congestion
            1 => (w / 2).max(1), // cleared
            2 => {
                closed.push((u, v, w));
                INFINITY // closure
            }
            _ => match closed.pop() {
                Some((cu, cv, cw)) => {
                    let r = maintainer.update_edge(&mut net, &mut index, cu, cv, cw);
                    total_entries += r.entries_changed;
                    total_pages += r.pages_touched;
                    continue; // reopened a closed road instead
                }
                None => w + 1,
            },
        };
        let r = maintainer.update_edge(&mut net, &mut index, u, v, new_w);
        total_entries += r.entries_changed;
        total_pages += r.pages_touched;
    }
    println!(
        "maintenance total: {total_entries} signature entries rewritten, {total_pages} pages touched"
    );
    println!(
        "(a full rebuild would rewrite {} entries)",
        net.num_nodes() * warehouses.len()
    );

    // --- Queries after maintenance are still exact. ---
    let mut session = index.session(&net);
    let after = knn(&mut session, depot, 3, KnnType::Type1);
    println!("\nafter traffic, 3 nearest warehouses from {depot}:");
    for r in &after {
        println!("  warehouse {} at {}", r.object, r.dist.unwrap());
    }
    // Verify against a fresh Dijkstra.
    let tree = distance_signature::graph::sssp(&net, depot);
    let mut truth: Vec<u32> = warehouses
        .iter()
        .map(|(_, h)| tree.dist[h.index()])
        .collect();
    truth.sort_unstable();
    assert_eq!(
        after.iter().map(|r| r.dist.unwrap()).collect::<Vec<_>>(),
        truth[..3].to_vec(),
        "maintained index must stay exact"
    );
    println!("verified against fresh Dijkstra ✓");

    let pairs = epsilon_join(&mut session, &customers, 60);
    println!("ε-join after maintenance: {} pairs within 60", pairs.len());
}
