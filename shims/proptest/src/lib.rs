//! Minimal vendored stand-in for the `proptest` crate.
//!
//! Implements exactly the subset this workspace's property tests use:
//!
//! - the `proptest! { #![proptest_config(...)] #[test] fn f(x in strat) {..} }`
//!   macro form,
//! - `Strategy` with `prop_map`, implemented for integer/float ranges and
//!   2-/3-/4-tuples of strategies,
//! - `proptest::collection::vec(strategy, size)` with fixed or ranged sizes,
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! - `ProptestConfig::with_cases`.
//!
//! Differences from the real crate: inputs are generated from a per-test
//! deterministic SplitMix64 stream (same inputs every run — CI-stable), and
//! failing cases are **not shrunk**; the panic message reports the case
//! number so a failure is still reproducible by construction.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-test random stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derive a stream from the fully qualified test name and case index,
    /// so every test and every case sees different but reproducible data.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case number.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[inline]
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test inputs. `gen_value` replaces the real crate's
/// `new_tree` + `current`; there is no shrinking.
pub trait Strategy {
    type Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// A fixed value, generated as-is every case.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Size specification for `vec`: a fixed length or a range of lengths.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.elem.gen_value(rng)).collect()
        }
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; property tests in this workspace always
        // pick explicitly, so this only backstops new call sites.
        ProptestConfig { cases: 64 }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($tok:tt)*) => { assert!($($tok)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tok:tt)*) => { assert_eq!($($tok)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tok:tt)*) => { assert_ne!($($tok)*) };
}

/// The test-harness macro. Each declared function becomes a zero-argument
/// `#[test]` that loops over `cases` deterministic inputs; a failure panics
/// with the case number (rerun is bit-identical, so no shrink corpus is
/// stored).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $( $arg:pat_param in $strat:expr ),* $(,)? ) $body:block
      )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __test = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__cfg.cases {
                let __run = ::std::panic::catch_unwind(|| {
                    let mut __rng = $crate::TestRng::for_case(__test, __case as u64);
                    $( let $arg = $crate::Strategy::gen_value(&($strat), &mut __rng); )*
                    $body
                });
                if let Err(payload) = __run {
                    eprintln!(
                        "proptest: {} failed at case {}/{} (deterministic; rerun reproduces it)",
                        __test, __case, __cfg.cases
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn vec_sizes_respect_spec() {
        let mut rng = TestRng::for_case("vec_sizes", 0);
        let fixed = collection::vec(0u32..10, 24).gen_value(&mut rng);
        assert_eq!(fixed.len(), 24);
        for _ in 0..100 {
            let ranged = collection::vec(0u32..10, 1..5).gen_value(&mut rng);
            assert!((1..5).contains(&ranged.len()));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let strat = (1u32..5, 0usize..3).prop_map(|(a, b)| a as usize + b);
        let mut rng = TestRng::for_case("compose", 3);
        for _ in 0..50 {
            let v = strat.gen_value(&mut rng);
            assert!((1..8).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_inputs(x in 3u32..10, ys in collection::vec(0u8..4, 2..6)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..6).contains(&ys.len()));
            prop_assert!(ys.iter().all(|&y| y < 4));
        }
    }
}
