//! Minimal vendored stand-in for the `criterion` crate.
//!
//! Supports the subset used by this workspace's benches — `benchmark_group`,
//! `sample_size`, `bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros — with
//! real wall-clock measurement:
//!
//! - per bench: a short calibration pass picks an iteration count per sample
//!   so one sample lasts ≥ ~2 ms (or a single iteration for slow benches),
//! - a few *warmup* samples are taken first and discarded (caches, branch
//!   predictors and frequency scaling settle before anything is recorded),
//! - `sample_size` samples are then collected, samples more than
//!   `3.5 σ`-equivalents from the median are rejected by a MAD filter
//!   (see [`mad_filter`]) and the **median ns/iteration** of the survivors
//!   is reported (robust against scheduler noise on shared machines),
//! - results are written to `target/criterion/<group>/<bench>/new/estimates.json`
//!   in a layout compatible with real criterion's estimate files (the
//!   `median.point_estimate` / `mean.point_estimate` fields that tooling
//!   such as `scripts/bench_snapshot.sh` reads), plus a human line on stdout.
//!
//! Environment knobs: `CRITERION_SAMPLE_SIZE` overrides every group's sample
//! count (useful for quick smoke runs); `CRITERION_WARMUP` overrides the
//! number of discarded warmup samples (default 2, `0` disables).

use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup; the shim times the routine per call
/// either way, so the variants only exist for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

/// Target time for one sample during calibration.
const TARGET_SAMPLE: Duration = Duration::from_millis(2);

pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = env_sample_size().unwrap_or(self.default_sample_size);
        BenchmarkGroup {
            _criterion: self,
            group: name.to_string(),
            sample_size,
        }
    }

    /// Ungrouped bench; filed under the group name `default`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = env_sample_size().unwrap_or(self.default_sample_size);
        run_bench("default", id, sample_size, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if env_sample_size().is_none() {
            self.sample_size = n.max(2);
        }
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&self.group, id, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn env_sample_size() -> Option<usize> {
    std::env::var("CRITERION_SAMPLE_SIZE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n >= 2)
}

/// Warmup samples collected and discarded before measurement.
fn warmup_samples() -> usize {
    std::env::var("CRITERION_WARMUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// Robust outlier rejection: keep samples within `3.5` robust standard
/// deviations of the median, estimating the deviation as `1.4826 × MAD`
/// (the consistency constant that makes the median absolute deviation an
/// unbiased σ estimator for normal data). When the MAD is zero (at least
/// half the samples identical) every sample is kept — rejecting against a
/// zero spread would discard all variation. Returns `(kept, rejected)`.
fn mad_filter(samples: &[f64]) -> (Vec<f64>, usize) {
    if samples.len() < 3 {
        return (samples.to_vec(), 0);
    }
    let m = median_of(samples);
    let mad = median_of(&samples.iter().map(|x| (x - m).abs()).collect::<Vec<_>>());
    if mad == 0.0 {
        return (samples.to_vec(), 0);
    }
    let cutoff = 3.5 * 1.4826 * mad;
    let kept: Vec<f64> = samples
        .iter()
        .copied()
        .filter(|x| (x - m).abs() <= cutoff)
        .collect();
    let rejected = samples.len() - kept.len();
    (kept, rejected)
}

/// Median of an unsorted, non-empty slice.
fn median_of(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
    }
}

/// Substring filter from `CRITERION_FILTER`: when set, only benches whose
/// `group/id` contains it run (setup code outside `bench_function` still
/// executes). Lets a re-measurement target one bench without paying for
/// the whole suite.
fn bench_filter() -> Option<String> {
    std::env::var("CRITERION_FILTER")
        .ok()
        .filter(|s| !s.is_empty())
}

fn run_bench<F>(group: &str, id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(pat) = bench_filter() {
        if !format!("{group}/{id}").contains(&pat) {
            return;
        }
    }
    let warmup = warmup_samples();
    let mut b = Bencher {
        sample_size,
        warmup,
        samples_ns: Vec::with_capacity(sample_size),
    };
    f(&mut b);
    let samples = b.samples_ns;
    assert!(
        !samples.is_empty(),
        "bench {group}/{id} never called Bencher::iter"
    );
    let (kept, rejected) = mad_filter(&samples);
    let median = median_of(&kept);
    let mean = kept.iter().sum::<f64>() / kept.len() as f64;
    println!(
        "bench {group}/{id}: median {} /iter, mean {} ({} samples, {} warmup discarded, {} outliers rejected)",
        fmt_ns(median),
        fmt_ns(mean),
        kept.len(),
        warmup,
        rejected
    );
    if let Err(e) = write_estimates(group, id, median, mean) {
        eprintln!("warning: could not write criterion estimates for {group}/{id}: {e}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// `target/` of the workspace that built this bench executable.
fn target_dir() -> PathBuf {
    if let Ok(d) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(d);
    }
    std::env::current_exe()
        .ok()
        .and_then(|exe| {
            exe.ancestors()
                .find(|p| p.file_name().is_some_and(|n| n == "target"))
                .map(|p| p.to_path_buf())
        })
        .unwrap_or_else(|| PathBuf::from("target"))
}

fn write_estimates(group: &str, id: &str, median_ns: f64, mean_ns: f64) -> std::io::Result<()> {
    let dir = target_dir()
        .join("criterion")
        .join(sanitize(group))
        .join(sanitize(id))
        .join("new");
    fs::create_dir_all(&dir)?;
    let json = format!(
        concat!(
            "{{\"median\":{{\"point_estimate\":{median}}},",
            "\"mean\":{{\"point_estimate\":{mean}}},",
            "\"unit\":\"ns\"}}\n"
        ),
        median = median_ns,
        mean = mean_ns
    );
    fs::write(dir.join("estimates.json"), json)
}

/// Same path sanitization idea as real criterion: ids become directories.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c == '/' || c == '\\' || c == ' ' {
                '_'
            } else {
                c
            }
        })
        .collect()
}

pub struct Bencher {
    sample_size: usize,
    warmup: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine` called back-to-back; records ns per iteration. The
    /// first `warmup` samples run at full length but are discarded.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: how many iterations fill TARGET_SAMPLE?
        let once = {
            let t = Instant::now();
            std::hint::black_box(routine());
            t.elapsed()
        };
        let iters = iters_per_sample(once);
        for round in 0..self.warmup + self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let total = t.elapsed();
            if round >= self.warmup {
                self.samples_ns.push(total.as_nanos() as f64 / iters as f64);
            }
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup runs outside the
    /// timed region.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let once = {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            t.elapsed()
        };
        let iters = iters_per_sample(once);
        let mut inputs = Vec::with_capacity(iters as usize);
        for round in 0..self.warmup + self.sample_size {
            inputs.clear();
            for _ in 0..iters {
                inputs.push(setup());
            }
            let t = Instant::now();
            for input in inputs.drain(..) {
                std::hint::black_box(routine(input));
            }
            let total = t.elapsed();
            if round >= self.warmup {
                self.samples_ns.push(total.as_nanos() as f64 / iters as f64);
            }
        }
    }
}

fn iters_per_sample(once: Duration) -> u64 {
    if once >= TARGET_SAMPLE || once.is_zero() {
        1
    } else {
        (TARGET_SAMPLE.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    }
}

/// Re-export so benches can `use criterion::black_box` like the real crate.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_writes_estimates() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(4);
        group.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
        let path = target_dir().join("criterion/shim_selftest/spin/new/estimates.json");
        let body = std::fs::read_to_string(&path).expect("estimates written");
        assert!(body.contains("median"), "estimates has median: {body}");
    }

    #[test]
    fn calibration_is_bounded() {
        assert_eq!(iters_per_sample(Duration::from_secs(1)), 1);
        assert!(iters_per_sample(Duration::from_nanos(10)) > 1000);
    }

    #[test]
    fn mad_filter_rejects_spikes() {
        // One scheduler spike among tight samples must go.
        let samples = [10.0, 10.5, 9.8, 10.2, 10.1, 9.9, 500.0];
        let (kept, rejected) = mad_filter(&samples);
        assert_eq!(rejected, 1);
        assert_eq!(kept.len(), 6);
        assert!(kept.iter().all(|&x| x < 100.0));
    }

    #[test]
    fn mad_filter_keeps_everything_when_mad_is_zero() {
        // More than half the samples identical → MAD 0 → no rejection,
        // even of the obvious outlier (a zero spread rejects everything
        // that differs at all, which is worse).
        let samples = [10.0, 10.0, 10.0, 10.0, 99.0];
        let (kept, rejected) = mad_filter(&samples);
        assert_eq!(rejected, 0);
        assert_eq!(kept.len(), 5);
    }

    #[test]
    fn mad_filter_keeps_moderate_spread() {
        // Gaussian-ish spread with no real outliers: nothing rejected.
        let samples = [9.0, 10.0, 11.0, 10.5, 9.5, 10.2, 9.8];
        let (kept, rejected) = mad_filter(&samples);
        assert_eq!(rejected, 0);
        assert_eq!(kept.len(), samples.len());
    }

    #[test]
    fn mad_filter_passes_tiny_inputs_through() {
        let (kept, rejected) = mad_filter(&[1.0, 1000.0]);
        assert_eq!((kept.len(), rejected), (2, 0));
    }

    #[test]
    fn median_of_handles_even_and_odd() {
        assert_eq!(median_of(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_of(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn warmup_samples_are_discarded() {
        // sample_size 3 + warmup 2: exactly 3 samples recorded, and the
        // routine ran at least 5 rounds.
        let mut calls = 0u64;
        let mut b = Bencher {
            sample_size: 3,
            warmup: 2,
            samples_ns: Vec::new(),
        };
        b.iter(|| {
            calls += 1;
            std::thread::sleep(Duration::from_micros(50));
        });
        assert_eq!(b.samples_ns.len(), 3);
        assert!(calls >= 5, "expected ≥5 rounds, saw {calls} calls");
    }
}
