//! Minimal vendored stand-in for the `criterion` crate.
//!
//! Supports the subset used by this workspace's benches — `benchmark_group`,
//! `sample_size`, `bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros — with
//! real wall-clock measurement:
//!
//! - per bench: a short calibration pass picks an iteration count per sample
//!   so one sample lasts ≥ ~2 ms (or a single iteration for slow benches),
//! - `sample_size` samples are collected and the **median ns/iteration** is
//!   reported (robust against scheduler noise),
//! - results are written to `target/criterion/<group>/<bench>/new/estimates.json`
//!   in a layout compatible with real criterion's estimate files (the
//!   `median.point_estimate` / `mean.point_estimate` fields that tooling
//!   such as `scripts/bench_snapshot.sh` reads), plus a human line on stdout.
//!
//! Environment knobs: `CRITERION_SAMPLE_SIZE` overrides every group's sample
//! count (useful for quick smoke runs).

use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup; the shim times the routine per call
/// either way, so the variants only exist for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

/// Target time for one sample during calibration.
const TARGET_SAMPLE: Duration = Duration::from_millis(2);

pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = env_sample_size().unwrap_or(self.default_sample_size);
        BenchmarkGroup {
            _criterion: self,
            group: name.to_string(),
            sample_size,
        }
    }

    /// Ungrouped bench; filed under the group name `default`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = env_sample_size().unwrap_or(self.default_sample_size);
        run_bench("default", id, sample_size, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if env_sample_size().is_none() {
            self.sample_size = n.max(2);
        }
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&self.group, id, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn env_sample_size() -> Option<usize> {
    std::env::var("CRITERION_SAMPLE_SIZE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n >= 2)
}

fn run_bench<F>(group: &str, id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        sample_size,
        samples_ns: Vec::with_capacity(sample_size),
    };
    f(&mut b);
    let mut samples = b.samples_ns;
    assert!(
        !samples.is_empty(),
        "bench {group}/{id} never called Bencher::iter"
    );
    samples.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    let median = if samples.len() % 2 == 1 {
        samples[samples.len() / 2]
    } else {
        (samples[samples.len() / 2 - 1] + samples[samples.len() / 2]) / 2.0
    };
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "bench {group}/{id}: median {} /iter, mean {} ({} samples)",
        fmt_ns(median),
        fmt_ns(mean),
        samples.len()
    );
    if let Err(e) = write_estimates(group, id, median, mean) {
        eprintln!("warning: could not write criterion estimates for {group}/{id}: {e}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// `target/` of the workspace that built this bench executable.
fn target_dir() -> PathBuf {
    if let Ok(d) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(d);
    }
    std::env::current_exe()
        .ok()
        .and_then(|exe| {
            exe.ancestors()
                .find(|p| p.file_name().is_some_and(|n| n == "target"))
                .map(|p| p.to_path_buf())
        })
        .unwrap_or_else(|| PathBuf::from("target"))
}

fn write_estimates(group: &str, id: &str, median_ns: f64, mean_ns: f64) -> std::io::Result<()> {
    let dir = target_dir()
        .join("criterion")
        .join(sanitize(group))
        .join(sanitize(id))
        .join("new");
    fs::create_dir_all(&dir)?;
    let json = format!(
        concat!(
            "{{\"median\":{{\"point_estimate\":{median}}},",
            "\"mean\":{{\"point_estimate\":{mean}}},",
            "\"unit\":\"ns\"}}\n"
        ),
        median = median_ns,
        mean = mean_ns
    );
    fs::write(dir.join("estimates.json"), json)
}

/// Same path sanitization idea as real criterion: ids become directories.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c == '/' || c == '\\' || c == ' ' { '_' } else { c })
        .collect()
}

pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine` called back-to-back; records ns per iteration.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: how many iterations fill TARGET_SAMPLE?
        let once = {
            let t = Instant::now();
            std::hint::black_box(routine());
            t.elapsed()
        };
        let iters = iters_per_sample(once);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let total = t.elapsed();
            self.samples_ns.push(total.as_nanos() as f64 / iters as f64);
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup runs outside the
    /// timed region.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let once = {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            t.elapsed()
        };
        let iters = iters_per_sample(once);
        let mut inputs = Vec::with_capacity(iters as usize);
        for _ in 0..self.sample_size {
            inputs.clear();
            for _ in 0..iters {
                inputs.push(setup());
            }
            let t = Instant::now();
            for input in inputs.drain(..) {
                std::hint::black_box(routine(input));
            }
            let total = t.elapsed();
            self.samples_ns.push(total.as_nanos() as f64 / iters as f64);
        }
    }
}

fn iters_per_sample(once: Duration) -> u64 {
    if once >= TARGET_SAMPLE || once.is_zero() {
        1
    } else {
        (TARGET_SAMPLE.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    }
}

/// Re-export so benches can `use criterion::black_box` like the real crate.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_writes_estimates() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(4);
        group.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
        let path = target_dir()
            .join("criterion/shim_selftest/spin/new/estimates.json");
        let body = std::fs::read_to_string(&path).expect("estimates written");
        assert!(body.contains("median"), "estimates has median: {body}");
    }

    #[test]
    fn calibration_is_bounded() {
        assert_eq!(iters_per_sample(Duration::from_secs(1)), 1);
        assert!(iters_per_sample(Duration::from_nanos(10)) > 1000);
    }
}
