//! Minimal vendored stand-in for the `rand` crate (API-compatible subset).
//!
//! The build environment for this repository has no network access to a
//! crates registry, so the handful of `rand` entry points the workspace
//! actually uses are implemented here: `rngs::StdRng`, `SeedableRng::
//! seed_from_u64`, `Rng::{gen, gen_bool, gen_range}` and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! The generator is SplitMix64 — statistically solid for test-data
//! generation and benchmarking (the only uses in this workspace), fully
//! deterministic per seed, and trivially portable. It is **not** the real
//! `StdRng` stream and is not cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `Rng` via `rng.gen()`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` without modulo bias worth caring about
/// here: Lemire's multiply-shift reduction.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// `RngCore` just like the real crate.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::sample(self) < p
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface; only the `seed_from_u64` entry point is used here.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Stream differs from the
    /// real `StdRng` (ChaCha12) but every use in this workspace only needs
    /// a fixed, well-mixed, seed-reproducible stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // One warm-up step so that seeds 0 and 1 diverge immediately.
            let mut rng = StdRng {
                state: state ^ 0x5851_F42D_4C95_7F2D,
            };
            rng.state = rng.state.wrapping_add(rng.next_u64());
            rng
        }
    }

    /// Alias: callers that opt into `SmallRng` get the same generator.
    pub type SmallRng = StdRng;
}

pub mod seq {
    use super::{RngCore, SampleRange};

    /// Slice helpers: Fisher–Yates `shuffle` and uniform `choose`.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_single(rng)])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u32> = (0..8).map(|_| a.gen_range(0..1000u32)).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.gen_range(0..1000u32)).collect();
        let zs: Vec<u32> = (0..8).map(|_| c.gen_range(0..1000u32)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.gen_range(10usize..15);
            assert!((10..15).contains(&v));
            seen[v - 10] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range seen");
        for _ in 0..500 {
            let v = rng.gen_range(1u32..=6);
            assert!((1..=6).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut xs: Vec<usize> = (0..100).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "shuffle moved something");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (2200..2800).contains(&hits),
            "got {hits} of 10000 at p=0.25"
        );
    }
}
