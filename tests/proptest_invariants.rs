//! Property-based tests over randomly generated networks, datasets and
//! partitions: the index must agree with textbook Dijkstra everywhere.

use distance_signature::graph::{
    sssp, Dist, NetworkBuilder, NodeId, ObjectSet, Point, RoadNetwork,
};
use distance_signature::signature::category::{CategoryPartition, DistRange};
use distance_signature::signature::query::knn::{knn, KnnType};
use distance_signature::signature::query::range::range_query;
use distance_signature::signature::{SignatureConfig, SignatureIndex};
use proptest::prelude::*;

/// A random connected network: `n` nodes on a ring (guaranteeing
/// connectivity) plus random chords, all with random weights.
fn arb_network() -> impl Strategy<Value = RoadNetwork> {
    (
        3usize..28,
        proptest::collection::vec((0usize..28, 0usize..28, 1u32..15), 0..40),
    )
        .prop_map(|(n, chords)| {
            let mut b = NetworkBuilder::new();
            let ids: Vec<NodeId> = (0..n)
                .map(|i| {
                    let a = i as f64 / n as f64 * std::f64::consts::TAU;
                    b.add_node(Point::new(a.cos() * n as f64, a.sin() * n as f64))
                })
                .collect();
            for i in 0..n {
                b.add_edge(ids[i], ids[(i + 1) % n], 1 + (i as u32 * 7) % 9);
            }
            for (u, v, w) in chords {
                let (u, v) = (u % n, v % n);
                if u != v && !b.has_edge(ids[u], ids[v]) {
                    b.add_edge(ids[u], ids[v], w);
                }
            }
            b.build()
        })
}

/// Distinct host nodes for `k` objects on an `n`-node network.
fn hosts(n: usize, picks: &[usize]) -> Vec<NodeId> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for &p in picks {
        let v = p % n;
        if seen.insert(v) {
            out.push(NodeId(v as u32));
        }
    }
    if out.is_empty() {
        out.push(NodeId(0));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_retrieval_equals_dijkstra(
        net in arb_network(),
        picks in proptest::collection::vec(0usize..64, 1..6),
        query in 0usize..64,
    ) {
        let objects = ObjectSet::from_nodes(&net, hosts(net.num_nodes(), &picks));
        let idx = SignatureIndex::build(&net, &objects, &SignatureConfig::default());
        let mut sess = idx.session(&net);
        let q = NodeId((query % net.num_nodes()) as u32);
        let tree = sssp(&net, q);
        for (o, h) in objects.iter() {
            prop_assert_eq!(sess.retrieve_exact(q, o), tree.dist[h.index()]);
        }
    }

    #[test]
    fn approx_retrieval_always_brackets_truth(
        net in arb_network(),
        picks in proptest::collection::vec(0usize..64, 1..6),
        query in 0usize..64,
        eps in 0u32..200,
    ) {
        let objects = ObjectSet::from_nodes(&net, hosts(net.num_nodes(), &picks));
        let idx = SignatureIndex::build(&net, &objects, &SignatureConfig::default());
        let mut sess = idx.session(&net);
        let q = NodeId((query % net.num_nodes()) as u32);
        let tree = sssp(&net, q);
        let delta = DistRange::exact(eps);
        for (o, h) in objects.iter() {
            let r = sess.retrieve_approx(q, o, delta);
            prop_assert!(r.contains(tree.dist[h.index()]));
            prop_assert!(!r.partially_intersects(&delta));
        }
    }

    #[test]
    fn range_query_equals_linear_scan(
        net in arb_network(),
        picks in proptest::collection::vec(0usize..64, 1..8),
        query in 0usize..64,
        eps in 0u32..150,
    ) {
        let objects = ObjectSet::from_nodes(&net, hosts(net.num_nodes(), &picks));
        let idx = SignatureIndex::build(&net, &objects, &SignatureConfig::default());
        let mut sess = idx.session(&net);
        let q = NodeId((query % net.num_nodes()) as u32);
        let tree = sssp(&net, q);
        let truth: Vec<_> = objects
            .iter()
            .filter(|&(_, h)| tree.dist[h.index()] <= eps)
            .map(|(o, _)| o)
            .collect();
        prop_assert_eq!(range_query(&mut sess, q, eps), truth);
    }

    #[test]
    fn knn_type1_equals_sorted_truth(
        net in arb_network(),
        picks in proptest::collection::vec(0usize..64, 1..8),
        query in 0usize..64,
        k in 1usize..6,
    ) {
        let objects = ObjectSet::from_nodes(&net, hosts(net.num_nodes(), &picks));
        let idx = SignatureIndex::build(&net, &objects, &SignatureConfig::default());
        let mut sess = idx.session(&net);
        let q = NodeId((query % net.num_nodes()) as u32);
        let tree = sssp(&net, q);
        let mut truth: Vec<Dist> = objects.iter().map(|(_, h)| tree.dist[h.index()]).collect();
        truth.sort_unstable();
        truth.truncate(k);
        let got: Vec<Dist> = knn(&mut sess, q, k, KnnType::Type1)
            .into_iter()
            .map(|r| r.dist.unwrap())
            .collect();
        prop_assert_eq!(got, truth);
    }

    #[test]
    fn arbitrary_partitions_round_trip(
        c in 1.2f64..8.0,
        t in 1u32..100,
        samples in proptest::collection::vec(0u32..100_000, 1..50),
        max in 100u32..50_000,
    ) {
        let p = CategoryPartition::exponential(c, t, max);
        for d in samples {
            let cat = p.category_of(d);
            let r = p.range_of(cat);
            prop_assert!(r.contains(d), "d={} cat={} range={:?}", d, cat, r);
            // Categories are a partition: adjacent ranges must touch.
            if cat > 0 {
                prop_assert_eq!(p.range_of(cat - 1).hi + 1, r.lo);
            }
        }
    }

    #[test]
    fn persistence_round_trips_any_index(
        net in arb_network(),
        picks in proptest::collection::vec(0usize..64, 1..6),
        c10 in 16u32..50,
        t in 1u32..25,
    ) {
        use distance_signature::signature::persist;
        let objects = ObjectSet::from_nodes(&net, hosts(net.num_nodes(), &picks));
        let cfg = SignatureConfig {
            c: c10 as f64 / 10.0,
            t: Some(t),
            ..Default::default()
        };
        let idx = SignatureIndex::build(&net, &objects, &cfg);
        let mut buf = Vec::new();
        persist::write_index(&idx, &mut buf).unwrap();
        let back = persist::read_index(&buf[..], &net).unwrap();
        for n in net.nodes() {
            prop_assert_eq!(back.decode_node(n), idx.decode_node(n));
        }
        // The network snapshot round-trips alongside.
        let mut nbuf = Vec::new();
        distance_signature::graph::io::write_network(&net, &mut nbuf).unwrap();
        let net2 = distance_signature::graph::io::read_network(&nbuf[..]).unwrap();
        for n in net.nodes() {
            let a: Vec<_> = net.neighbors(n).collect();
            let b: Vec<_> = net2.neighbors(n).collect();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn session_knn_methods_agree_with_truth(
        net in arb_network(),
        picks in proptest::collection::vec(0usize..64, 2..7),
        query in 0usize..64,
    ) {
        let objects = ObjectSet::from_nodes(&net, hosts(net.num_nodes(), &picks));
        let idx = SignatureIndex::build(&net, &objects, &SignatureConfig::default());
        let mut sess = idx.session(&net);
        let q = NodeId((query % net.num_nodes()) as u32);
        let tree = sssp(&net, q);
        for r in sess.knn_with_paths(q, 2) {
            prop_assert_eq!(r.dist, tree.dist[objects.node_of(r.object).index()]);
            let len: Dist = r
                .path
                .windows(2)
                .map(|w| net.edge_weight(w[0], w[1]).unwrap())
                .sum();
            prop_assert_eq!(len, r.dist);
        }
    }

    #[test]
    fn decode_is_total_for_any_partition_choice(
        net in arb_network(),
        picks in proptest::collection::vec(0usize..64, 1..5),
        c10 in 15u32..60,   // c in [1.5, 6.0]
        t in 1u32..30,
    ) {
        let objects = ObjectSet::from_nodes(&net, hosts(net.num_nodes(), &picks));
        let cfg = SignatureConfig {
            c: c10 as f64 / 10.0,
            t: Some(t),
            ..Default::default()
        };
        let idx = SignatureIndex::build(&net, &objects, &cfg);
        // Every node decodes, and categories match the true distances.
        for n in net.nodes() {
            let sig = idx.decode_node(n);
            for (o, h) in objects.iter() {
                let d = sssp(&net, h).dist[n.index()];
                prop_assert_eq!(sig.cats[o.index()], idx.partition().category_of(d));
            }
        }
    }
}
