//! Cross-crate integration: every engine (signature, full, NVD, INE, IER,
//! and the contraction-hierarchy oracle) must return identical answers on
//! identical workloads — distances are exact in all of them, so agreement
//! is bitwise, not approximate.

use distance_signature::baselines::{FullIndex, Ier, Ine, NvdIndex};
use distance_signature::graph::generate::{random_planar, PlanarConfig};
use distance_signature::graph::{Dist, NodeId, ObjectId, ObjectSet, RoadNetwork};
use distance_signature::hierarchy::{ChConfig, ContractionHierarchy};
use distance_signature::service::{generate, Backend, QueryOutput, QueryService, ServiceConfig};
use distance_signature::service::{Skew, WorkloadConfig};
use distance_signature::signature::query::knn::{knn, KnnType};
use distance_signature::signature::query::range::range_query;
use distance_signature::signature::{SignatureConfig, SignatureIndex};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixture(seed: u64, nodes: usize, density: f64) -> (RoadNetwork, ObjectSet) {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = random_planar(
        &PlanarConfig {
            num_nodes: nodes,
            mean_degree: 4.0,
            max_weight: 10,
        },
        &mut rng,
    );
    let objects = ObjectSet::uniform(&net, density, &mut rng);
    (net, objects)
}

#[test]
fn all_engines_agree_on_range_queries() {
    let (net, objects) = fixture(1001, 600, 0.03);
    let sig = SignatureIndex::build(&net, &objects, &SignatureConfig::default());
    let mut sess = sig.session(&net);
    let mut full = FullIndex::build(&net, &objects, 32, true);
    let ch = ContractionHierarchy::build(&net, &ChConfig::default());
    let mut full_ch = FullIndex::build_with_hierarchy(&net, &objects, 32, &ch);
    let mut nvd = NvdIndex::build(&net, &objects, 32);
    let mut ine = Ine::new(&net, 32);

    for q in net.nodes().step_by(61) {
        for eps in [0u32, 7, 45, 200, 2000] {
            let a = range_query(&mut sess, q, eps);
            let b = full.range(q, eps);
            let b2 = full_ch.range(q, eps);
            let c = nvd.range(&net, q, eps);
            let d = ine.range(&net, &objects, q, eps);
            assert_eq!(a, b, "signature vs full at {q}, eps {eps}");
            assert_eq!(a, b2, "signature vs CH-built full at {q}, eps {eps}");
            assert_eq!(a, c, "signature vs NVD at {q}, eps {eps}");
            assert_eq!(a, d, "signature vs INE at {q}, eps {eps}");
        }
    }
}

#[test]
fn all_engines_agree_on_knn_distances() {
    let (net, objects) = fixture(1003, 500, 0.04);
    let sig = SignatureIndex::build(&net, &objects, &SignatureConfig::default());
    let mut sess = sig.session(&net);
    let mut full = FullIndex::build(&net, &objects, 32, true);
    let mut nvd = NvdIndex::build(&net, &objects, 32);
    let mut ine = Ine::new(&net, 32);
    let mut ier = Ier::new(&net, &objects, 32);

    for q in net.nodes().step_by(47) {
        for k in [1usize, 3, 8] {
            let dists =
                |v: Vec<(ObjectId, Dist)>| v.into_iter().map(|(_, d)| d).collect::<Vec<_>>();
            let a: Vec<Dist> = knn(&mut sess, q, k, KnnType::Type1)
                .into_iter()
                .map(|r| r.dist.unwrap())
                .collect();
            assert_eq!(a, dists(full.knn(q, k)), "full at {q} k={k}");
            assert_eq!(a, dists(nvd.knn(&net, q, k)), "nvd at {q} k={k}");
            assert_eq!(a, dists(ine.knn(&net, &objects, q, k)), "ine at {q} k={k}");
            assert_eq!(a, dists(ier.knn(&net, &objects, q, k)), "ier at {q} k={k}");
        }
    }
}

#[test]
fn clustered_datasets_are_handled_by_every_engine() {
    let mut rng = StdRng::seed_from_u64(1007);
    let net = random_planar(
        &PlanarConfig {
            num_nodes: 500,
            ..Default::default()
        },
        &mut rng,
    );
    let objects = ObjectSet::clustered(&net, 0.04, 4, &mut rng);
    let sig = SignatureIndex::build(&net, &objects, &SignatureConfig::default());
    let mut sess = sig.session(&net);
    let mut full = FullIndex::build(&net, &objects, 32, true);
    let mut nvd = NvdIndex::build(&net, &objects, 32);

    for q in net.nodes().step_by(83) {
        let a: Vec<Dist> = knn(&mut sess, q, 5, KnnType::Type1)
            .into_iter()
            .map(|r| r.dist.unwrap())
            .collect();
        let b: Vec<Dist> = full.knn(q, 5).into_iter().map(|(_, d)| d).collect();
        let c: Vec<Dist> = nvd.knn(&net, q, 5).into_iter().map(|(_, d)| d).collect();
        assert_eq!(a, b);
        assert_eq!(a, c);
    }
}

#[test]
fn uncompressed_and_compressed_indexes_answer_identically() {
    let (net, objects) = fixture(1009, 400, 0.05);
    let on = SignatureIndex::build(&net, &objects, &SignatureConfig::default());
    let off = SignatureIndex::build(
        &net,
        &objects,
        &SignatureConfig {
            compress: false,
            ..Default::default()
        },
    );
    let mut s_on = on.session(&net);
    let mut s_off = off.session(&net);
    for q in net.nodes().step_by(29) {
        assert_eq!(
            range_query(&mut s_on, q, 60),
            range_query(&mut s_off, q, 60)
        );
        let a: Vec<_> = knn(&mut s_on, q, 4, KnnType::Type1)
            .into_iter()
            .map(|r| r.dist)
            .collect();
        let b: Vec<_> = knn(&mut s_off, q, 4, KnnType::Type1)
            .into_iter()
            .map(|r| r.dist)
            .collect();
        assert_eq!(a, b);
    }
    // Compression must actually shrink the payload.
    assert!(
        on.report.compressed_bits
            < off.report.encoded_bits + (on.num_nodes() * on.num_objects()) as u64
    );
}

/// Tie-aware comparison of one signature output against a canonical
/// backend's: kNN answers are unique only up to ties at the k-th distance
/// (both sort by `(dist, object)`, but the signature path may keep a
/// different tied object), everything else must be bitwise equal.
fn assert_output_agrees(s: &QueryOutput, canon: &QueryOutput, ctx: &str) {
    match (s, canon) {
        (QueryOutput::Knn(a), QueryOutput::Knn(b)) => {
            let dists = |rs: &[distance_signature::signature::KnnResult]| {
                rs.iter().map(|r| r.dist).collect::<Vec<_>>()
            };
            assert_eq!(dists(a), dists(b), "{ctx}: kNN distance profile");
            let kth = a.last().and_then(|r| r.dist);
            let strict = |rs: &[distance_signature::signature::KnnResult]| {
                rs.iter()
                    .filter(|r| r.dist < kth)
                    .map(|r| r.object)
                    .collect::<Vec<_>>()
            };
            assert_eq!(strict(a), strict(b), "{ctx}: objects below the cut");
        }
        (QueryOutput::Range(a), QueryOutput::Range(b)) => {
            let mut a = a.clone();
            a.sort_unstable();
            assert_eq!(&a, b, "{ctx}: range");
        }
        (a, b) => assert_eq!(a, b, "{ctx}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Three-way element-wise agreement on random planar networks: the
    /// signature index, incremental network expansion, and the contraction
    /// hierarchy all serve the same mixed batch through the query service.
    /// INE and the hierarchy both emit canonical orderings and must be
    /// strictly equal; the signature path is compared tie-aware.
    #[test]
    fn three_backends_agree_on_random_networks(
        seed in 0u64..1 << 32,
        nodes in 60usize..180,
        density in 0.03f64..0.10,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = random_planar(
            &PlanarConfig {
                num_nodes: nodes,
                ..Default::default()
            },
            &mut rng,
        );
        let objects = ObjectSet::uniform(&net, density, &mut rng);
        if objects.len() < 2 {
            return; // degenerate draw: nothing to cross-check
        }
        let service = QueryService::new(
            net,
            objects,
            &SignatureConfig::default(),
            &ServiceConfig {
                shards: 4,
                pool_pages: 32,
                ..Default::default()
            },
        );
        let batch = generate(
            &service.net(),
            &WorkloadConfig {
                count: 40,
                seed: seed ^ 0xA5A5,
                skew: Skew::Uniform,
                ..Default::default()
            },
        );

        let sig = service.serve_batch_on(Backend::Signature, &batch, 2);
        let ine = service.serve_batch_on(Backend::Dijkstra, &batch, 2);
        let ch = service.serve_batch_on(Backend::Hierarchy, &batch, 2);
        for (i, q) in batch.iter().enumerate() {
            prop_assert_eq!(
                &ch.outputs[i],
                &ine.outputs[i],
                "query {} ({:?}): ch vs ine",
                i,
                q
            );
            assert_output_agrees(
                &sig.outputs[i],
                &ine.outputs[i],
                &format!("query {i} ({q:?}): signature vs canonical"),
            );
        }
    }
}

#[test]
fn nondefault_partition_parameters_stay_correct() {
    let (net, objects) = fixture(1013, 300, 0.05);
    for (c, t) in [(2.0, 5), (4.0, 25), (1.8, 2), (6.0, 10)] {
        let cfg = SignatureConfig {
            c,
            t: Some(t),
            ..Default::default()
        };
        let sig = SignatureIndex::build(&net, &objects, &cfg);
        let mut sess = sig.session(&net);
        let mut full = FullIndex::build(&net, &objects, 32, true);
        for q in net.nodes().step_by(67) {
            let a: Vec<Dist> = knn(&mut sess, q, 3, KnnType::Type1)
                .into_iter()
                .map(|r| r.dist.unwrap())
                .collect();
            let b: Vec<Dist> = full.knn(q, 3).into_iter().map(|(_, d)| d).collect();
            assert_eq!(a, b, "c={c} t={t} at {q}");
        }
    }
    let _ = NodeId(0);
}
