//! Integration tests for the persistence formats and the continuous-kNN
//! query across the full stack, through the public prelude.

use distance_signature::graph::io as gio;
use distance_signature::prelude::*;
use distance_signature::signature::persist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fixture(seed: u64) -> (RoadNetwork, ObjectSet, SignatureIndex) {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = random_planar(
        &PlanarConfig {
            num_nodes: 300,
            ..Default::default()
        },
        &mut rng,
    );
    let objects = ObjectSet::uniform(&net, 0.04, &mut rng);
    let idx = SignatureIndex::build(&net, &objects, &SignatureConfig::default());
    (net, objects, idx)
}

#[test]
fn full_stack_round_trip_through_files() {
    let (net, objects, idx) = fixture(3001);
    let dir = std::env::temp_dir().join(format!("dsi_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let net_path = dir.join("net.bin");
    let obj_path = dir.join("obj.bin");
    let idx_path = dir.join("idx.dssi");

    gio::save_network(&net, &net_path).unwrap();
    gio::write_objects(&objects, std::fs::File::create(&obj_path).unwrap()).unwrap();
    persist::save_index(&idx, &idx_path).unwrap();

    let net2 = gio::load_network(&net_path).unwrap();
    let objects2 = gio::read_objects(std::fs::File::open(&obj_path).unwrap(), &net2).unwrap();
    let idx2 = persist::load_index(&idx_path, &net2).unwrap();

    assert_eq!(objects.host_nodes(), objects2.host_nodes());
    let mut s1 = idx.session(&net);
    let mut s2 = idx2.session(&net2);
    for q in net.nodes().step_by(23) {
        assert_eq!(
            knn(&mut s1, q, 4, KnnType::Type1),
            knn(&mut s2, q, 4, KnnType::Type1),
            "kNN after reload at {q}"
        );
        assert_eq!(range_query(&mut s1, q, 70), range_query(&mut s2, q, 70));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cnn_agrees_with_per_node_knn_distances() {
    let (net, objects, idx) = fixture(3003);
    let mut sess = idx.session(&net);
    // Build a shortest path between two far nodes as the CNN route.
    let tree = distance_signature::graph::sssp(&net, NodeId(0));
    let far = net
        .nodes()
        .max_by_key(|v| {
            let d = tree.dist[v.index()];
            if d == distance_signature::graph::INFINITY {
                0
            } else {
                d
            }
        })
        .unwrap();
    let path = tree.path_to(far).unwrap();
    let k = 3;
    let segs = continuous_knn(&mut sess, &path, k);
    // Every node's kNN distance multiset matches a direct kNN query.
    let mut covered = 0;
    for seg in &segs {
        for (i, &node) in path.iter().enumerate().take(seg.end + 1).skip(seg.start) {
            covered += 1;
            let direct = knn(&mut sess, node, k, KnnType::Type1);
            let t = distance_signature::graph::sssp(&net, node);
            let mut seg_d: Vec<Dist> = seg
                .result
                .iter()
                .map(|&o| t.dist[objects.node_of(o).index()])
                .collect();
            seg_d.sort_unstable();
            let direct_d: Vec<Dist> = direct.iter().map(|r| r.dist.unwrap()).collect();
            assert_eq!(seg_d, direct_d, "path index {i}");
        }
    }
    assert_eq!(covered, path.len());
}

#[test]
fn knn_with_paths_matches_type1() {
    let (net, _, idx) = fixture(3005);
    let mut sess = idx.session(&net);
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..10 {
        let q = NodeId(rng.gen_range(0..net.num_nodes() as u32));
        let plain = knn(&mut sess, q, 4, KnnType::Type1);
        let with_paths = knn_with_paths(&mut sess, q, 4);
        assert_eq!(plain.len(), with_paths.len());
        for (a, b) in plain.iter().zip(&with_paths) {
            assert_eq!(a.object, b.object);
            assert_eq!(a.dist.unwrap(), b.dist);
            let len: Dist = b
                .path
                .windows(2)
                .map(|w| net.edge_weight(w[0], w[1]).unwrap())
                .sum();
            assert_eq!(len, b.dist);
        }
    }
}

#[test]
fn prelude_surface_compiles_and_works() {
    let (net, objects, idx) = fixture(3007);
    let mut sess = idx.session(&net);
    let q = NodeId(1);
    let _ = count_within(&mut sess, q, 30);
    let _ = aggregate_within(&mut sess, q, 30);
    let _ = self_epsilon_join(&mut sess, 25);
    let _ = epsilon_join(&mut sess, &objects, 25);
    let _: Vec<CnnSegment> = continuous_knn(&mut sess, &[q], 2);
}
