//! End-to-end lifecycle: build → query → maintain under updates → query →
//! compare against a from-scratch rebuild.

use distance_signature::graph::generate::{random_planar, PlanarConfig};
use distance_signature::graph::{NodeId, ObjectSet, INFINITY};
use distance_signature::signature::query::knn::{knn, KnnType};
use distance_signature::signature::query::range::range_query;
use distance_signature::signature::{SignatureConfig, SignatureIndex, SignatureMaintainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn maintained_index_equals_rebuilt_index() {
    let mut rng = StdRng::seed_from_u64(5005);
    let mut net = random_planar(
        &PlanarConfig {
            num_nodes: 350,
            ..Default::default()
        },
        &mut rng,
    );
    let objects = ObjectSet::uniform(&net, 0.05, &mut rng);
    // Pin the partition so the rebuild uses the identical spectrum (the
    // default estimates SP from the—now changed—network).
    let cfg = SignatureConfig {
        t: Some(10),
        spreading: Some(4000),
        ..Default::default()
    };
    let mut idx = SignatureIndex::build(&net, &objects, &cfg);
    let mut maint = SignatureMaintainer::new(&net, &objects);

    // A burst of mixed updates, including a removal and a re-insertion.
    let mut removed: Option<(NodeId, NodeId, u32)> = None;
    for round in 0..25 {
        let u = NodeId(rng.gen_range(0..net.num_nodes() as u32));
        let nbrs: Vec<_> = net
            .neighbors(u)
            .filter(|&(_, _, w)| w != INFINITY)
            .collect();
        if nbrs.is_empty() {
            continue;
        }
        let (_, v, w) = nbrs[rng.gen_range(0..nbrs.len())];
        let new_w = match round % 5 {
            0 => w + 9,
            1 => (w / 2).max(1),
            2 if removed.is_none() => {
                removed = Some((u, v, w));
                INFINITY
            }
            3 => {
                if let Some((ru, rv, rw)) = removed.take() {
                    maint.update_edge(&mut net, &mut idx, ru, rv, rw);
                }
                w + 1
            }
            _ => w + 2,
        };
        maint.update_edge(&mut net, &mut idx, u, v, new_w);
    }
    if let Some((ru, rv, rw)) = removed.take() {
        maint.update_edge(&mut net, &mut idx, ru, rv, rw);
    }

    // The maintained index must decode identically to a fresh build on the
    // mutated network.
    let fresh = SignatureIndex::build(&net, &objects, &cfg);
    for n in net.nodes() {
        let a = idx.decode_node(n);
        let b = fresh.decode_node(n);
        assert_eq!(a.cats, b.cats, "categories at {n}");
        // Links may differ where several shortest paths tie; both must be
        // valid descents, which the query equivalence below certifies.
    }

    // And answer queries identically.
    let mut s1 = idx.session(&net);
    let mut s2 = fresh.session(&net);
    for q in net.nodes().step_by(13) {
        assert_eq!(
            range_query(&mut s1, q, 70),
            range_query(&mut s2, q, 70),
            "range at {q}"
        );
        let a: Vec<_> = knn(&mut s1, q, 5, KnnType::Type1)
            .into_iter()
            .map(|r| r.dist)
            .collect();
        let b: Vec<_> = knn(&mut s2, q, 5, KnnType::Type1)
            .into_iter()
            .map(|r| r.dist)
            .collect();
        assert_eq!(a, b, "knn at {q}");
    }
}

#[test]
fn session_io_accounting_is_stable_across_runs() {
    let mut rng = StdRng::seed_from_u64(6006);
    let net = random_planar(
        &PlanarConfig {
            num_nodes: 400,
            ..Default::default()
        },
        &mut rng,
    );
    let objects = ObjectSet::uniform(&net, 0.03, &mut rng);
    let idx = SignatureIndex::build(&net, &objects, &SignatureConfig::default());

    // Identical cold-start query sequences must charge identical I/O —
    // the disk model is deterministic.
    let run = || {
        let mut sess = idx.session(&net);
        for q in net.nodes().step_by(37) {
            let _ = knn(&mut sess, q, 3, KnnType::Type3);
        }
        (sess.io_stats().logical, sess.io_stats().faults)
    };
    assert_eq!(run(), run());
}

#[test]
fn warm_buffer_reduces_faults() {
    let mut rng = StdRng::seed_from_u64(7007);
    let net = random_planar(
        &PlanarConfig {
            num_nodes: 400,
            ..Default::default()
        },
        &mut rng,
    );
    let objects = ObjectSet::uniform(&net, 0.03, &mut rng);
    let idx = SignatureIndex::build(&net, &objects, &SignatureConfig::default());
    let mut sess = idx.session(&net);
    let q = NodeId(17);
    let _ = knn(&mut sess, q, 5, KnnType::Type1);
    let cold = sess.io_stats().faults;
    sess.reset_stats();
    let _ = knn(&mut sess, q, 5, KnnType::Type1);
    let warm = sess.io_stats().faults;
    assert!(warm < cold.max(1), "warm {warm} must beat cold {cold}");
}
